package pos

import (
	"strings"
	"unicode"
)

// Tag assigns a part-of-speech tag to every token of a sentence. Tokens are
// the word/punctuation strings produced by textproc.Tokenize, in order.
// Tagging proceeds in two passes: a lexical pass (closed-class lexicons,
// irregular-verb tables, morphology and suffix heuristics) followed by a
// contextual repair pass that fixes the classic ambiguities (noun/verb after
// determiners, base form after modals and "to", participles after
// auxiliaries).
func TagWords(tokens []string) []TaggedToken {
	out := make([]TaggedToken, len(tokens))
	for i, tok := range tokens {
		lower := strings.ToLower(tok)
		out[i] = TaggedToken{Text: tok, Lower: lower, Tag: lexicalTag(tok, lower)}
	}
	repair(out)
	return out
}

// lexicalTag assigns a context-free tag to a single token.
func lexicalTag(tok, lower string) Tag {
	if lower == "" {
		return Other
	}
	r := rune(lower[0])
	if !unicode.IsLetter(r) && !unicode.IsDigit(r) {
		return Punct
	}
	if unicode.IsDigit(r) {
		return Number
	}

	// Negated contractions first: "didn't" must become a past verb, not be
	// swallowed by a generic rule.
	if strings.HasSuffix(lower, "n't") {
		if modals[lower] {
			return Modal
		}
		if auxPast[lower] {
			return VerbPast
		}
		if auxPresent[lower] {
			return VerbPresent
		}
	}

	switch {
	case pronounFirst[lower]:
		return PronounFirst
	case pronounSecond[lower]:
		return PronounSecond
	case pronounThird[lower]:
		return PronounThird
	case modals[lower]:
		return Modal
	case whWords[lower]:
		return WhWord
	case lower == "not":
		return Particle
	case auxPast[lower]:
		return VerbPast
	case auxPresent[lower]:
		return VerbPresent
	case lower == "be":
		return VerbBase
	case lower == "been", lower == "being":
		// Repair pass refines "been" to a participle; lexical default below.
		return VerbPastPart
	case determiners[lower]:
		return Determiner
	case conjunctions[lower]:
		return Conjunction
	case prepositions[lower]:
		return Preposition
	case commonNouns[lower]:
		return Noun
	case commonAdverbs[lower]:
		return Adverb
	case commonAdjectives[lower]:
		return Adjective
	}

	if _, ok := irregularPast[lower]; ok {
		return VerbPast
	}
	if _, ok := irregularPart[lower]; ok {
		return VerbPastPart
	}
	if baseVerbs[lower] {
		return VerbPresent // finite by default; repair demotes to base form
	}

	// Morphological derivations of known base verbs.
	if base, ok := stripVerbS(lower); ok && baseVerbs[base] {
		return VerbPresent
	}
	if base, ok := stripVerbED(lower); ok && baseVerbs[base] {
		return VerbPast
	}
	if base, ok := stripVerbING(lower); ok && baseVerbs[base] {
		return VerbGerund
	}

	return suffixTag(tok, lower)
}

// stripVerbS undoes third-person-singular inflection: "goes" → "go",
// "tries" → "try", "installs" → "install".
func stripVerbS(w string) (string, bool) {
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y", true
	case strings.HasSuffix(w, "sses"), strings.HasSuffix(w, "ches"),
		strings.HasSuffix(w, "shes"), strings.HasSuffix(w, "xes"),
		strings.HasSuffix(w, "zes"), strings.HasSuffix(w, "oes"):
		if len(w) > 3 {
			return w[:len(w)-2], true
		}
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 2:
		return w[:len(w)-1], true
	}
	return "", false
}

// stripVerbED undoes regular past inflection: "installed" → "install",
// "tried" → "try", "stopped" → "stop", "used" → "use".
func stripVerbED(w string) (string, bool) {
	if !strings.HasSuffix(w, "ed") || len(w) < 4 {
		return "", false
	}
	stem := w[:len(w)-2]
	if baseVerbs[stem] {
		return stem, true // install-ed
	}
	if baseVerbs[stem+"e"] {
		return stem + "e", true // us-ed → use
	}
	if strings.HasSuffix(stem, "i") && baseVerbs[stem[:len(stem)-1]+"y"] {
		return stem[:len(stem)-1] + "y", true // tri-ed → try
	}
	if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && baseVerbs[stem[:len(stem)-1]] {
		return stem[:len(stem)-1], true // stopp-ed → stop
	}
	return "", false
}

// stripVerbING undoes progressive inflection: "installing" → "install",
// "using" → "use", "stopping" → "stop".
func stripVerbING(w string) (string, bool) {
	if !strings.HasSuffix(w, "ing") || len(w) < 5 {
		return "", false
	}
	stem := w[:len(w)-3]
	if baseVerbs[stem] {
		return stem, true
	}
	if baseVerbs[stem+"e"] {
		return stem + "e", true
	}
	if len(stem) >= 2 && stem[len(stem)-1] == stem[len(stem)-2] && baseVerbs[stem[:len(stem)-1]] {
		return stem[:len(stem)-1], true
	}
	return "", false
}

// suffixTag guesses a tag for an open-class word from its shape.
func suffixTag(tok, lower string) Tag {
	switch {
	case strings.HasSuffix(lower, "ly") && len(lower) > 4:
		return Adverb
	case strings.HasSuffix(lower, "ing") && len(lower) > 5:
		return VerbGerund
	case strings.HasSuffix(lower, "ed") && len(lower) > 4:
		return VerbPast
	case strings.HasSuffix(lower, "tion"), strings.HasSuffix(lower, "sion"),
		strings.HasSuffix(lower, "ment"), strings.HasSuffix(lower, "ness"),
		strings.HasSuffix(lower, "ity"), strings.HasSuffix(lower, "ance"),
		strings.HasSuffix(lower, "ence"), strings.HasSuffix(lower, "ship"),
		strings.HasSuffix(lower, "ism"), strings.HasSuffix(lower, "ware"),
		strings.HasSuffix(lower, "age"):
		return Noun
	case strings.HasSuffix(lower, "ful"), strings.HasSuffix(lower, "ous"),
		strings.HasSuffix(lower, "ive"), strings.HasSuffix(lower, "able"),
		strings.HasSuffix(lower, "ible"), strings.HasSuffix(lower, "less"),
		strings.HasSuffix(lower, "ish"), strings.HasSuffix(lower, "est"):
		return Adjective
	}
	return Noun
}

// repair applies contextual correction rules over the lexically tagged
// sequence, left to right.
func repair(tt []TaggedToken) {
	for i := range tt {
		cur := &tt[i]
		prev := prevWord(tt, i)

		// "to" + verb → infinitive particle + base form.
		if cur.Tag.IsVerb() && prev != nil && prev.Lower == "to" {
			prev.Tag = Particle
			if cur.Tag == VerbPresent {
				cur.Tag = VerbBase
			}
		}

		// Modal + finite verb → base form ("would like", "can do").
		if cur.Tag == VerbPresent && prev != nil && prev.Tag == Modal {
			cur.Tag = VerbBase
		}

		// have/has/had + past verb → past participle (perfect aspect).
		if cur.Tag == VerbPast && prev != nil && isHaveForm(prev.Lower) {
			cur.Tag = VerbPastPart
		}
		// be-form + past verb → past participle (passive candidate); also
		// allow one intervening adverb or negation ("was not suggested").
		if cur.Tag == VerbPast && prev != nil {
			if beForms[prev.Lower] || getForms[prev.Lower] {
				cur.Tag = VerbPastPart
			} else if prev.Tag == Adverb || prev.Tag == Particle {
				if pp := prevWordBefore(tt, i, prev); pp != nil && (beForms[pp.Lower] || getForms[pp.Lower]) {
					cur.Tag = VerbPastPart
				}
			}
		}

		// Determiner/adjective + "verb" → noun ("the work", "a call",
		// "my previous trial"). Applies to ambiguous base/present verbs.
		if (cur.Tag == VerbPresent || cur.Tag == VerbBase) && prev != nil &&
			(prev.Tag == Determiner || prev.Tag == Adjective || prev.Tag == Number) {
			cur.Tag = Noun
		}

		// Determiner/possessive + adjective with no noun following is a
		// noun phrase head the suffix rules mistook ("the cable", "a
		// table"); true attributive adjectives precede their noun.
		if cur.Tag == Adjective && prev != nil &&
			(prev.Tag == Determiner || prev.Tag.IsPronoun() || prev.Tag == Adjective) {
			if nxt := nextWord(tt, i); nxt == nil ||
				(nxt.Tag != Noun && nxt.Tag != Adjective && nxt.Tag != Number && nxt.Tag != VerbGerund) {
				cur.Tag = Noun
			}
		}

		// Preposition + gerund stays a gerund; pronoun + gerund after be is
		// progressive — both already covered. But sentence-initial gerunds
		// followed by a noun act as nouns ("Programming forums are ...").
		if cur.Tag == VerbGerund && prev == nil {
			if nxt := nextWord(tt, i); nxt != nil && (nxt.Tag == Noun || nxt.Tag == Number) {
				cur.Tag = Noun
			}
		}
	}
}

// isHaveForm reports whether w is a form of "to have" (including negated
// contractions), for perfect-aspect detection.
func isHaveForm(w string) bool {
	switch w {
	case "have", "has", "had", "having", "'ve", "haven't", "hasn't", "hadn't":
		return true
	}
	return false
}

// prevWord returns the nearest preceding non-punctuation token, or nil.
func prevWord(tt []TaggedToken, i int) *TaggedToken {
	for j := i - 1; j >= 0; j-- {
		if tt[j].Tag != Punct {
			return &tt[j]
		}
	}
	return nil
}

// prevWordBefore returns the nearest non-punctuation token preceding the
// given marker token (which itself precedes index i).
func prevWordBefore(tt []TaggedToken, i int, marker *TaggedToken) *TaggedToken {
	seen := false
	for j := i - 1; j >= 0; j-- {
		if tt[j].Tag == Punct {
			continue
		}
		if !seen {
			if &tt[j] == marker {
				seen = true
			}
			continue
		}
		return &tt[j]
	}
	return nil
}

// nextWord returns the nearest following non-punctuation token, or nil.
func nextWord(tt []TaggedToken, i int) *TaggedToken {
	for j := i + 1; j < len(tt); j++ {
		if tt[j].Tag != Punct {
			return &tt[j]
		}
	}
	return nil
}

// IsNegation reports whether the lower-cased word functions as a negation
// marker ("not", "never", "didn't", ...).
func IsNegation(w string) bool {
	return negationWords[w] || strings.HasSuffix(w, "n't")
}

// IsBeForm reports whether the lower-cased word is a form of "to be".
func IsBeForm(w string) bool { return beForms[w] }

// IsGetForm reports whether the lower-cased word is a form of "to get".
func IsGetForm(w string) bool { return getForms[w] }

// IsWhWord reports whether the lower-cased word is an interrogative word.
func IsWhWord(w string) bool { return whWords[w] }

// IsFutureMarker reports whether the lower-cased word signals future tense
// ("will", "shall", "'ll", "won't").
func IsFutureMarker(w string) bool {
	switch w {
	case "will", "shall", "'ll", "won't", "shan't", "gonna":
		return true
	}
	return false
}
