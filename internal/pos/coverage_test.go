package pos

import "testing"

// These tests pin down the less-traveled tagger paths: morphology edge
// cases, repair-rule interactions, and the lexicon entries the CM
// annotator leans on hardest.

func TestMorphologyEdgeCases(t *testing.T) {
	cases := map[string]Tag{
		// -ies third person: "tries" → try.
		"tries": VerbPresent,
		// -oes: "goes" → go.
		"goes": VerbPresent,
		// doubled consonant past: "stopped" → stop.
		"stopped": VerbPast,
		// e-insertion past: "used" → use.
		"used": VerbPast,
		// doubled consonant gerund: "stopping" → stop.
		"stopping": VerbGerund,
		// e-insertion gerund: "using" → use.
		"using": VerbGerund,
	}
	for word, want := range cases {
		tt := TagWords([]string{"they", word})
		if tt[1].Tag != want {
			t.Errorf("%q tagged %v, want %v", word, tt[1].Tag, want)
		}
	}
}

func TestIrregularPastVsParticiple(t *testing.T) {
	// "went" is past-only; "gone" is participle-only; "thought" is both.
	tt := tagsOf("they went home")
	if findTag(tt, "went") != VerbPast {
		t.Error("went should be VerbPast")
	}
	tt = tagsOf("they have gone home")
	if findTag(tt, "gone") != VerbPastPart {
		t.Error("gone should be VerbPastPart")
	}
	tt = tagsOf("I thought about it")
	if findTag(tt, "thought") != VerbPast {
		t.Error("thought (finite) should be VerbPast")
	}
	tt = tagsOf("I have thought about it")
	if findTag(tt, "thought") != VerbPastPart {
		t.Error("thought after have should be VerbPastPart")
	}
}

func TestBeenBeingForms(t *testing.T) {
	tt := tagsOf("it has been repaired")
	if findTag(tt, "been") != VerbPastPart {
		t.Error("been should be VerbPastPart")
	}
	if findTag(tt, "repaired") != VerbPastPart {
		t.Error("repaired after been should be VerbPastPart")
	}
}

func TestGetPassive(t *testing.T) {
	tt := tagsOf("the laptop got repaired")
	if findTag(tt, "repaired") != VerbPastPart {
		t.Errorf("got-passive participle tagged %v", findTag(tt, "repaired"))
	}
}

func TestAdjectiveBeforeNounStaysAdjective(t *testing.T) {
	tt := tagsOf("a comfortable room with a reliable cable")
	if findTag(tt, "comfortable") != Adjective {
		t.Errorf("attributive 'comfortable' tagged %v", findTag(tt, "comfortable"))
	}
	// "cable" at phrase end after determiner must not stay Adjective
	// despite the -able suffix.
	if findTag(tt, "cable") != Noun {
		t.Errorf("'a reliable cable' head tagged %v, want Noun", findTag(tt, "cable"))
	}
}

func TestPredicativeAdjectiveSurvives(t *testing.T) {
	tt := tagsOf("the pool was comfortable")
	if findTag(tt, "comfortable") != Adjective {
		t.Errorf("predicative adjective tagged %v", findTag(tt, "comfortable"))
	}
}

func TestSentenceInitialGerundAsNoun(t *testing.T) {
	tt := tagsOf("Programming forums help everyone")
	if findTag(tt, "programming") != Noun {
		t.Errorf("sentence-initial gerund before noun tagged %v, want Noun", findTag(tt, "programming"))
	}
}

func TestEmptyAndDegenerateTokens(t *testing.T) {
	tt := TagWords([]string{"", "...", "123abc", "ok"})
	if tt[0].Tag != Other {
		t.Errorf("empty token tagged %v", tt[0].Tag)
	}
	if tt[1].Tag != Punct {
		t.Errorf("ellipsis tagged %v", tt[1].Tag)
	}
	if tt[2].Tag != Number {
		t.Errorf("123abc tagged %v, want Number", tt[2].Tag)
	}
}

func TestDeterminersConjunctionsPrepositions(t *testing.T) {
	tt := tagsOf("the disk and every cable in this tray")
	if findTag(tt, "the") != Determiner || findTag(tt, "every") != Determiner {
		t.Error("determiners mistagged")
	}
	if findTag(tt, "and") != Conjunction {
		t.Error("conjunction mistagged")
	}
	if findTag(tt, "in") != Preposition {
		t.Error("preposition mistagged")
	}
}

func TestContractionsCarryPerson(t *testing.T) {
	cases := map[string]Tag{
		"i'm": PronounFirst, "we've": PronounFirst, "you're": PronounSecond,
		"it's": PronounThird, "they'll": PronounThird,
	}
	for w, want := range cases {
		tt := TagWords([]string{w, "fine"})
		if tt[0].Tag != want {
			t.Errorf("%q tagged %v, want %v", w, tt[0].Tag, want)
		}
	}
}

func TestNounSuffixInventory(t *testing.T) {
	for _, w := range []string{"compression", "statement", "darkness",
		"scalability", "clearance", "hardware", "storage", "heroism"} {
		tt := TagWords([]string{"pure", w, "exists"})
		if tt[1].Tag != Noun {
			t.Errorf("%q tagged %v, want Noun", w, tt[1].Tag)
		}
	}
}

func TestAdverbBetweenAuxAndParticiple(t *testing.T) {
	tt := tagsOf("the driver was quickly updated")
	if findTag(tt, "updated") != VerbPastPart {
		t.Errorf("participle after 'was quickly' tagged %v", findTag(tt, "updated"))
	}
}

func TestIsGetForm(t *testing.T) {
	for _, w := range []string{"get", "gets", "got", "gotten", "getting"} {
		if !IsGetForm(w) {
			t.Errorf("IsGetForm(%q) = false", w)
		}
	}
	if IsGetForm("give") {
		t.Error("IsGetForm(give) = true")
	}
}

func TestSuffixTagInventory(t *testing.T) {
	// Words unknown to every lexicon, classified purely by shape.
	cases := map[string]Tag{
		"zorgly":      Adverb,
		"zorgling":    VerbGerund,
		"zorgled":     VerbPast,
		"zorglation":  Noun,
		"zorglession": Noun,
		"zorglement":  Noun,
		"zorgliness":  Noun,
		"zorglity":    Noun,
		"zorglance":   Noun,
		"zorglence":   Noun,
		"zorglship":   Noun,
		"zorglism":    Noun,
		"zorgleware":  Noun,
		"zorglage":    Noun,
		"zorglful":    Adjective,
		"zorglous":    Adjective,
		"zorglive":    Adjective,
		"zorglable":   Adjective,
		"zorglible":   Adjective,
		"zorgless":    Adjective,
		"zorglish":    Adjective,
		"zorgliest":   Adjective,
		"zorgl":       Noun, // no suffix: default
	}
	for w, want := range cases {
		tt := TagWords([]string{"xxzz", w}) // avoid sentence-initial rules
		if tt[1].Tag != want {
			t.Errorf("suffixTag(%q) = %v, want %v", w, tt[1].Tag, want)
		}
	}
}
