// Package pos implements a lexicon- and rule-based English part-of-speech
// tagger. The intention-based segmentation method of the paper needs, per
// sentence, the grammatical signals of Table 1: verbs with their tense,
// pronouns by grammatical person, nouns, adjectives and adverbs, negation
// and interrogative markers, and passive-voice constructions. A full
// statistical tagger is unnecessary for that; this package provides a
// deterministic tagger built from closed-class lexicons, an irregular-verb
// table, suffix heuristics, and a small set of contextual repair rules in
// the spirit of Brill (1992).
package pos

// Tag is a coarse part-of-speech category. The tag set is deliberately
// small: it is exactly the inventory the communication-means annotator
// consumes.
type Tag uint8

const (
	// Other covers tokens that none of the rules classify.
	Other Tag = iota
	// Noun covers common and proper nouns.
	Noun
	// VerbBase is an uninflected verb form ("install", "go").
	VerbBase
	// VerbPresent is a finite present-tense verb ("installs", "goes", "is").
	VerbPresent
	// VerbPast is a finite past-tense verb ("installed", "went", "was").
	VerbPast
	// VerbGerund is an -ing form ("installing").
	VerbGerund
	// VerbPastPart is a past participle ("installed", "gone") when used
	// non-finitely, e.g. inside a perfect or passive construction.
	VerbPastPart
	// Modal is a modal auxiliary ("will", "can", "would", ...).
	Modal
	// Adjective covers adjectives.
	Adjective
	// Adverb covers adverbs.
	Adverb
	// PronounFirst is a first-person pronoun ("I", "we", "my", ...).
	PronounFirst
	// PronounSecond is a second-person pronoun ("you", "your", ...).
	PronounSecond
	// PronounThird is a third-person pronoun ("he", "it", "they", ...).
	PronounThird
	// Determiner covers articles and demonstrative determiners.
	Determiner
	// Preposition covers prepositions and subordinating conjunctions.
	Preposition
	// Conjunction covers coordinating conjunctions.
	Conjunction
	// Number covers numerals and alphanumeric model names ("320GB").
	Number
	// Particle covers "to" before a verb and negation particles.
	Particle
	// WhWord covers interrogative words ("what", "how", "why", ...).
	WhWord
	// Punct covers punctuation tokens.
	Punct
)

var tagNames = [...]string{
	Other: "OTHER", Noun: "NOUN", VerbBase: "VB", VerbPresent: "VBP",
	VerbPast: "VBD", VerbGerund: "VBG", VerbPastPart: "VBN", Modal: "MD",
	Adjective: "ADJ", Adverb: "ADV", PronounFirst: "PRP1",
	PronounSecond: "PRP2", PronounThird: "PRP3", Determiner: "DET",
	Preposition: "PREP", Conjunction: "CONJ", Number: "NUM",
	Particle: "PART", WhWord: "WH", Punct: "PUNCT",
}

// String returns the conventional short name of the tag.
func (t Tag) String() string {
	if int(t) < len(tagNames) {
		return tagNames[t]
	}
	return "?"
}

// IsVerb reports whether the tag is any verb form (excluding modals).
func (t Tag) IsVerb() bool {
	switch t {
	case VerbBase, VerbPresent, VerbPast, VerbGerund, VerbPastPart:
		return true
	}
	return false
}

// IsPronoun reports whether the tag is a personal pronoun of any person.
func (t Tag) IsPronoun() bool {
	return t == PronounFirst || t == PronounSecond || t == PronounThird
}

// TaggedToken pairs a token's text with its assigned tag.
type TaggedToken struct {
	Text  string // original token text
	Lower string // lower-cased text
	Tag   Tag
}
