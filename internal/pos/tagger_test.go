package pos

import (
	"testing"
	"testing/quick"

	"repro/internal/textproc"
)

// tagOf tags the sentence and returns the tag of the token at index i.
func tagOf(t *testing.T, sentence string, i int) Tag {
	t.Helper()
	var words []string
	for _, tok := range textproc.Tokenize(sentence) {
		words = append(words, tok.Text)
	}
	tt := TagWords(words)
	if i >= len(tt) {
		t.Fatalf("sentence %q has only %d tokens", sentence, len(tt))
	}
	return tt[i].Tag
}

func tagsOf(sentence string) []TaggedToken {
	var words []string
	for _, tok := range textproc.Tokenize(sentence) {
		words = append(words, tok.Text)
	}
	return TagWords(words)
}

func findTag(tt []TaggedToken, word string) Tag {
	for _, x := range tt {
		if x.Lower == word {
			return x.Tag
		}
	}
	return Other
}

func TestPronouns(t *testing.T) {
	tt := tagsOf("I gave you her laptop and we thanked them")
	cases := map[string]Tag{
		"i": PronounFirst, "you": PronounSecond, "her": PronounThird,
		"we": PronounFirst, "them": PronounThird,
	}
	for w, want := range cases {
		if got := findTag(tt, w); got != want {
			t.Errorf("%q tagged %v, want %v", w, got, want)
		}
	}
}

func TestModalAndBaseForm(t *testing.T) {
	tt := tagsOf("I would like to install Hadoop")
	if got := findTag(tt, "would"); got != Modal {
		t.Errorf("would tagged %v, want Modal", got)
	}
	if got := findTag(tt, "like"); got != VerbBase {
		t.Errorf("like after modal tagged %v, want VerbBase", got)
	}
	if got := findTag(tt, "install"); got != VerbBase {
		t.Errorf("install after to tagged %v, want VerbBase", got)
	}
	if got := findTag(tt, "to"); got != Particle {
		t.Errorf("infinitival to tagged %v, want Particle", got)
	}
}

func TestPastTense(t *testing.T) {
	tt := tagsOf("My boss gave me a computer and it stopped yesterday")
	if got := findTag(tt, "gave"); got != VerbPast {
		t.Errorf("gave tagged %v, want VerbPast", got)
	}
	if got := findTag(tt, "stopped"); got != VerbPast {
		t.Errorf("stopped tagged %v, want VerbPast", got)
	}
}

func TestPerfectParticiple(t *testing.T) {
	tt := tagsOf("Friends have downloaded the Cloudera distribution")
	if got := findTag(tt, "downloaded"); got != VerbPastPart {
		t.Errorf("downloaded after have tagged %v, want VerbPastPart", got)
	}
	if got := findTag(tt, "have"); got != VerbPresent {
		t.Errorf("have tagged %v, want VerbPresent", got)
	}
}

func TestPassiveParticiple(t *testing.T) {
	tt := tagsOf("Linux was installed by the technician")
	if got := findTag(tt, "installed"); got != VerbPastPart {
		t.Errorf("installed after was tagged %v, want VerbPastPart", got)
	}
	tt = tagsOf("The driver was not updated")
	if got := findTag(tt, "updated"); got != VerbPastPart {
		t.Errorf("updated after 'was not' tagged %v, want VerbPastPart", got)
	}
}

func TestNegatedContractions(t *testing.T) {
	tt := tagsOf("it didn't work and it doesn't boot and I won't try")
	if got := findTag(tt, "didn't"); got != VerbPast {
		t.Errorf("didn't tagged %v, want VerbPast", got)
	}
	if got := findTag(tt, "doesn't"); got != VerbPresent {
		t.Errorf("doesn't tagged %v, want VerbPresent", got)
	}
	if got := findTag(tt, "won't"); got != Modal {
		t.Errorf("won't tagged %v, want Modal", got)
	}
}

func TestNounAfterDeterminer(t *testing.T) {
	tt := tagsOf("the work on a call")
	if got := findTag(tt, "work"); got != Noun {
		t.Errorf("'the work' tagged %v, want Noun", got)
	}
	if got := findTag(tt, "call"); got != Noun {
		t.Errorf("'a call' tagged %v, want Noun", got)
	}
}

func TestGerund(t *testing.T) {
	tt := tagsOf("I am installing the update")
	if got := findTag(tt, "installing"); got != VerbGerund {
		t.Errorf("installing tagged %v, want VerbGerund", got)
	}
}

func TestThirdPersonS(t *testing.T) {
	tt := tagsOf("it blinks and she tries again")
	if got := findTag(tt, "blinks"); got != VerbPresent {
		t.Errorf("blinks tagged %v, want VerbPresent", got)
	}
	if got := findTag(tt, "tries"); got != VerbPresent {
		t.Errorf("tries tagged %v, want VerbPresent", got)
	}
}

func TestSuffixHeuristics(t *testing.T) {
	tt := tagsOf("unfortunately the blazotronic frobnication is wonderful")
	if got := findTag(tt, "unfortunately"); got != Adverb {
		t.Errorf("-ly word tagged %v, want Adverb", got)
	}
	if got := findTag(tt, "frobnication"); got != Noun {
		t.Errorf("-tion word tagged %v, want Noun", got)
	}
	if got := findTag(tt, "wonderful"); got != Adjective {
		t.Errorf("-ful word tagged %v, want Adjective", got)
	}
}

func TestNumbersAndPunct(t *testing.T) {
	tt := tagsOf("a 320GB drive, 4 disks!")
	if got := findTag(tt, "320gb"); got != Number {
		t.Errorf("320GB tagged %v, want Number", got)
	}
	if got := findTag(tt, "4"); got != Number {
		t.Errorf("4 tagged %v, want Number", got)
	}
	if got := tagOf(t, "x ,", 1); got != Punct {
		t.Errorf("comma tagged %v, want Punct", got)
	}
}

func TestWhWords(t *testing.T) {
	tt := tagsOf("why does it stop and how can I fix it")
	if got := findTag(tt, "why"); got != WhWord {
		t.Errorf("why tagged %v, want WhWord", got)
	}
	if got := findTag(tt, "how"); got != WhWord {
		t.Errorf("how tagged %v, want WhWord", got)
	}
}

func TestIrregularLookups(t *testing.T) {
	if base, ok := IsIrregularPast("went"); !ok || base != "go" {
		t.Errorf("IsIrregularPast(went) = %q,%v", base, ok)
	}
	if base, ok := IsIrregularParticiple("written"); !ok || base != "write" {
		t.Errorf("IsIrregularParticiple(written) = %q,%v", base, ok)
	}
	if _, ok := IsIrregularPast("xyzzy"); ok {
		t.Error("IsIrregularPast(xyzzy) should be false")
	}
}

func TestHelperPredicates(t *testing.T) {
	if !IsNegation("not") || !IsNegation("didn't") || !IsNegation("never") {
		t.Error("IsNegation misses obvious negators")
	}
	if IsNegation("now") {
		t.Error("IsNegation(now) = true")
	}
	if !IsBeForm("was") || !IsBeForm("is") || IsBeForm("have") {
		t.Error("IsBeForm wrong")
	}
	if !IsFutureMarker("will") || !IsFutureMarker("'ll") || IsFutureMarker("would") {
		t.Error("IsFutureMarker wrong")
	}
	if !IsWhWord("what") || IsWhWord("the") {
		t.Error("IsWhWord wrong")
	}
}

func TestTagString(t *testing.T) {
	if Noun.String() != "NOUN" || VerbPast.String() != "VBD" {
		t.Error("Tag.String mismatch")
	}
	if Tag(200).String() != "?" {
		t.Error("out-of-range Tag.String should be ?")
	}
}

func TestIsVerbIsPronoun(t *testing.T) {
	for _, tag := range []Tag{VerbBase, VerbPresent, VerbPast, VerbGerund, VerbPastPart} {
		if !tag.IsVerb() {
			t.Errorf("%v.IsVerb() = false", tag)
		}
	}
	if Modal.IsVerb() || Noun.IsVerb() {
		t.Error("Modal/Noun should not be verbs")
	}
	if !PronounFirst.IsPronoun() || !PronounThird.IsPronoun() || Noun.IsPronoun() {
		t.Error("IsPronoun wrong")
	}
}

// Property: Tag never panics, returns one TaggedToken per input token, and
// preserves the input text.
func TestTagTotalProperty(t *testing.T) {
	f := func(words []string) bool {
		tt := TagWords(words)
		if len(tt) != len(words) {
			return false
		}
		for i := range tt {
			if tt[i].Text != words[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPaperDocASignals(t *testing.T) {
	// The motivating Doc A mixes present-tense context, a modal desire, an
	// interrogative, and a past-tense report. Spot-check key signals.
	tt := tagsOf("I have an HP system with a RAID 0 controller")
	if got := findTag(tt, "have"); got != VerbPresent {
		t.Errorf("have tagged %v, want VerbPresent", got)
	}
	tt = tagsOf("It stopped since the web site was suggesting to have 1TB disks")
	if got := findTag(tt, "stopped"); got != VerbPast {
		t.Errorf("stopped tagged %v, want VerbPast", got)
	}
	if got := findTag(tt, "suggesting"); got != VerbGerund {
		t.Errorf("suggesting tagged %v, want VerbGerund", got)
	}
}

func BenchmarkTag(b *testing.B) {
	var words []string
	for _, tok := range textproc.Tokenize("Friends have downloaded the Cloudera distribution but it didn't work. It stopped since the web site was suggesting to have 1TB disks.") {
		words = append(words, tok.Text)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		TagWords(words)
	}
}
