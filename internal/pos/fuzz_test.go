package pos

import (
	"strings"
	"testing"
)

// FuzzTagWords feeds arbitrary token streams through the tagger. The
// tagger must never panic on any UTF-8 (or non-UTF-8) token — it sees
// whatever the tokenizer emits, including pure punctuation, digits
// glued to letters, and mangled bytes — and must honor its structural
// contract: one output per input, text preserved, Lower consistent,
// and every tag inside the declared tag set. Splitting here is plain
// whitespace splitting so the harness does not depend on textproc.
func FuzzTagWords(f *testing.F) {
	f.Add("My hard disk makes a clicking noise when reading .")
	f.Add("I 've been trying to install MySQL 5.5 but it didn 't work !")
	f.Add("don't won't can't shouldn't I'll we're")
	f.Add("??? 320GB x86-64 --- '' \xff\x80 naïve")
	f.Add("")
	f.Fuzz(func(t *testing.T, input string) {
		tokens := strings.Fields(input)
		tagged := TagWords(tokens)
		if len(tagged) != len(tokens) {
			t.Fatalf("TagWords returned %d tags for %d tokens", len(tagged), len(tokens))
		}
		for i, tt := range tagged {
			if tt.Text != tokens[i] {
				t.Fatalf("token %d: Text = %q, want %q", i, tt.Text, tokens[i])
			}
			if tt.Lower != strings.ToLower(tokens[i]) {
				t.Fatalf("token %d: Lower = %q, want %q", i, tt.Lower, strings.ToLower(tokens[i]))
			}
			if tt.Tag > Punct {
				t.Fatalf("token %d: tag %d outside the declared tag set", i, tt.Tag)
			}
		}
		// Tagging is per-sentence in the pipeline, but the repair pass
		// must also survive a second application over its own output
		// without changing the structural fields.
		again := TagWords(tokens)
		for i := range again {
			if again[i].Text != tagged[i].Text || again[i].Tag != tagged[i].Tag {
				t.Fatalf("token %d: tagging not deterministic", i)
			}
		}
	})
}
