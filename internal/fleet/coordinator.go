package fleet

import (
	"container/heap"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/topk"
)

// The coordinator is the client half of the fleet: it owns the fleet's
// topology (which endpoints serve which shards), answers Related
// queries by scattering the home leg and sibling probes over a
// Transport, and merges the replies with exactly the in-process
// scatter-gather's equivalence mechanisms — shared collection-global
// statistics (frozen into the probes by the home shard), full-depth
// per-cluster cuts merged before trimming, and order-preserving id
// assignment so the (score desc, id asc) tie-break survives the merge.
// With every shard answering, its results are bit-identical to
// shard.Group and to the single index.
//
// Degradation is explicit and typed. Each leg gets per-attempt
// deadlines with retry-with-backoff on transient errors, hedged
// requests to replicas once an attempt outlives the shard's observed
// latency percentile, and deduplication of late duplicate replies by
// (shard, epoch). A sibling that exhausts its budget is dropped from
// the merge and named in Missing with Partial=true; a home shard that
// cannot answer is a typed 503 — without the reference document's
// probes there is nothing correct to return. Replies from a different
// snapshot epoch are never merged.
//
// Concurrency model: each query runs a single-threaded event loop.
// Transports deliver into a mutex-guarded inbox and nudge a notify
// channel; retries, hedges, and attempt timeouts are actions on a
// time-ordered heap the loop itself fires. The loop blocks only in
// Clock.Wait — under the real clock that is a plain select; under
// VirtualClock the whole query (scripted fault deliveries included)
// executes deterministically on one goroutine.

// Coordinator-level observability. Per-shard instruments are resolved
// per Coordinator via the GetOrNew registrars.
var (
	spanFleetRelated   = obs.NewSpan("fleet.related")
	ctrRetries         = obs.NewCounter("fleet.retries")
	ctrHedges          = obs.NewCounter("fleet.hedges")
	ctrHedgeWins       = obs.NewCounter("fleet.hedge_wins")
	ctrPartial         = obs.NewCounter("fleet.partial")
	ctrDupReplies      = obs.NewCounter("fleet.dup_replies")
	ctrAttemptTimeouts = obs.NewCounter("fleet.attempt_timeouts")
	ctrEpochMismatch   = obs.NewCounter("fleet.epoch_mismatch")
)

// ShardEndpoints names where one shard partition is served: a primary
// plus optional read replicas (hedge targets).
type ShardEndpoints struct {
	Shard    int      `json:"shard"`
	Primary  string   `json:"primary"`
	Replicas []string `json:"replicas,omitempty"`
}

// Topology is the fleet's endpoint map, one entry per shard.
type Topology struct {
	Endpoints []ShardEndpoints `json:"endpoints"`
}

// Options tunes the coordinator's degradation machinery. The zero
// value gets serving-grade defaults from withDefaults; Transport is
// the one mandatory field.
type Options struct {
	// Transport reaches the shard servers. Required.
	Transport Transport
	// Clock drives every timeout, backoff, and hedge decision.
	// RealClock{} when nil; tests install a VirtualClock.
	Clock Clock
	// Timeout is the whole-query budget: when it expires, unanswered
	// siblings become Missing and an unanswered home becomes a 503.
	// Default 2s.
	Timeout time.Duration
	// AttemptTimeout bounds each individual attempt; an attempt that
	// exceeds it is canceled and (budget permitting) retried. Default
	// 500ms.
	AttemptTimeout time.Duration
	// Retries is the per-leg retry budget beyond the first attempt.
	// Default 2.
	Retries int
	// Backoff is the base delay before a retry after a fast transient
	// error, doubling per attempt. (Attempt timeouts retry immediately —
	// the wait already happened.) Default 25ms.
	Backoff time.Duration
	// HedgeAfter is the hedge delay used until a shard has latency
	// history: when a leg's first attempt outlives it and the shard has
	// replicas, a second attempt goes to the next endpoint. Default
	// 100ms.
	HedgeAfter time.Duration
	// HedgeQuantile replaces HedgeAfter once a shard has enough
	// completed legs: hedge when the attempt outlives this quantile of
	// the shard's recent latencies. Default 0.9.
	HedgeQuantile float64
}

func (o Options) withDefaults() Options {
	if o.Clock == nil {
		o.Clock = RealClock{}
	}
	if o.Timeout <= 0 {
		o.Timeout = 2 * time.Second
	}
	if o.AttemptTimeout <= 0 {
		o.AttemptTimeout = 500 * time.Millisecond
	}
	if o.Retries < 0 {
		o.Retries = 0
	} else if o.Retries == 0 {
		o.Retries = 2
	}
	if o.Backoff <= 0 {
		o.Backoff = 25 * time.Millisecond
	}
	if o.HedgeAfter <= 0 {
		o.HedgeAfter = 100 * time.Millisecond
	}
	if o.HedgeQuantile <= 0 || o.HedgeQuantile >= 1 {
		o.HedgeQuantile = 0.9
	}
	return o
}

// latRingSize bounds the per-shard latency history feeding the
// adaptive hedge delay; latMinSamples gates the switch from the fixed
// HedgeAfter floor to the observed quantile.
const (
	latRingSize   = 64
	latMinSamples = 8
)

// FleetResult is one answered Related query. When Partial is false the
// ranking is proven complete — bit-identical to the unsharded index.
// When true, Missing names the shards whose lists could not be
// fetched in budget; the ranking is exactly what the in-process merge
// would produce over the remaining shards.
type FleetResult struct {
	Results []match.Result
	Partial bool
	Missing []int
}

// Coordinator scatters Related queries across a shard fleet.
type Coordinator struct {
	opts  Options
	tr    Transport
	clock Clock

	name     string
	total    int
	seed     uint64
	clusters int
	epoch    uint64
	wire     int            // min wire version across the fleet; gates trace propagation
	mcfg     match.MRConfig // ScoreThreshold/NormalizeLists for TrimParams

	eps map[int][]string // shard → primary, replicas...

	// Global↔local id directory, replayed from (seed, doc count) exactly
	// like shard.Group's and grown as servers report larger counts.
	dirMu  sync.RWMutex
	owner  []int32
	local  []int32
	global [][]int32

	// Per-shard completed-leg latencies for the adaptive hedge delay.
	latMu  sync.Mutex
	lat    [][]time.Duration
	latPos []int

	// Per-shard health view for GET /stats: consecutive leg failures
	// (reset on any merged leg) and the kind of the last failure.
	healthMu    sync.Mutex
	consecFail  []int
	lastErrKind []string

	ctrLegOK   []*obs.Counter // fleet.leg.NN.ok: legs merged
	ctrLegMiss []*obs.Counter // fleet.leg.NN.missing: legs dropped as missing
	spanLeg    []*obs.Span    // fleet.leg.NN: leg latency (first launch → win)

	// cacheGen extends the static snapshot epoch into a live cache
	// epoch (see CacheEpoch). Bumped whenever the coordinator's view of
	// the fleet changes in a way a cached merged result must not
	// survive: the directory grows (a shard reported adds) or a shard's
	// health transitions to degraded.
	cacheGen atomic.Uint64
}

// New bootstraps a coordinator against a topology: it fetches
// /internal/meta from each shard's endpoints (first to answer wins),
// verifies that every server agrees on the snapshot epoch and that the
// topology covers every shard, and replays the routing directory from
// the manifest-reported document count.
func New(ctx context.Context, topo Topology, opts Options) (*Coordinator, error) {
	opts = opts.withDefaults()
	if opts.Transport == nil {
		return nil, fmt.Errorf("fleet: Options.Transport is required")
	}
	eps := make(map[int][]string, len(topo.Endpoints))
	for _, e := range topo.Endpoints {
		if _, dup := eps[e.Shard]; dup {
			return nil, fmt.Errorf("fleet: topology lists shard %d twice", e.Shard)
		}
		if e.Primary == "" {
			return nil, fmt.Errorf("fleet: topology shard %d has no primary", e.Shard)
		}
		eps[e.Shard] = append([]string{e.Primary}, e.Replicas...)
	}
	if len(eps) == 0 {
		return nil, fmt.Errorf("fleet: topology is empty")
	}

	c := &Coordinator{opts: opts, tr: opts.Transport, clock: opts.Clock, eps: eps}
	var first *Meta
	minWire := -1
	for s, list := range eps {
		m, err := c.bootstrapMeta(ctx, list)
		if err != nil {
			return nil, fmt.Errorf("fleet: bootstrapping shard %d: %w", s, err)
		}
		if minWire < 0 || m.Wire < minWire {
			minWire = m.Wire
		}
		owns := false
		for _, o := range m.Shards {
			owns = owns || o == s
		}
		if !owns {
			return nil, fmt.Errorf("fleet: endpoint for shard %d serves shards %v", s, m.Shards)
		}
		if first == nil {
			first = m
			continue
		}
		if m.Epoch != first.Epoch {
			return nil, fmt.Errorf("fleet: shard %d endpoint is on epoch %d, fleet is on %d (mixed snapshots)", s, m.Epoch, first.Epoch)
		}
	}
	if first.TotalShards != len(eps) {
		return nil, fmt.Errorf("fleet: servers declare %d shards, topology lists %d", first.TotalShards, len(eps))
	}
	for s := 0; s < first.TotalShards; s++ {
		if _, ok := eps[s]; !ok {
			return nil, fmt.Errorf("fleet: topology is missing shard %d", s)
		}
	}

	c.name = first.Name
	c.total = first.TotalShards
	c.seed = first.Seed
	c.clusters = first.Clusters
	c.epoch = first.Epoch
	c.wire = minWire
	c.mcfg = match.MRConfig{
		NFactor:        first.Params.NFactor,
		ScoreThreshold: first.Params.ScoreThreshold,
		NormalizeLists: first.Params.NormalizeLists,
	}
	c.global = make([][]int32, c.total)
	c.lat = make([][]time.Duration, c.total)
	c.latPos = make([]int, c.total)
	c.consecFail = make([]int, c.total)
	c.lastErrKind = make([]string, c.total)
	c.ctrLegOK = make([]*obs.Counter, c.total)
	c.ctrLegMiss = make([]*obs.Counter, c.total)
	c.spanLeg = make([]*obs.Span, c.total)
	for s := 0; s < c.total; s++ {
		lbl := fmt.Sprintf("fleet.leg.%02d", s)
		c.ctrLegOK[s] = obs.GetOrNewCounter(lbl + ".ok")
		c.ctrLegMiss[s] = obs.GetOrNewCounter(lbl + ".missing")
		c.spanLeg[s] = obs.GetOrNewSpan(lbl)
	}
	c.growDir(first.Docs)
	return c, nil
}

// bootstrapMeta fetches a shard's self-description, trying each
// endpoint once in order with the per-attempt timeout.
func (c *Coordinator) bootstrapMeta(ctx context.Context, eps []string) (*Meta, error) {
	var lastErr error
	for _, ep := range eps {
		m, err := c.fetchMeta(ctx, ep)
		if err == nil {
			return m, nil
		}
		lastErr = err
	}
	return nil, lastErr
}

// fetchOne is the synchronous-over-async skeleton for one-shot control
// RPCs (meta bootstrap, metrics scrape): issue the call, then block in
// the same Clock.Wait discipline as the query loop (so it works under
// VirtualClock and chaos too) until the delivery or the per-attempt
// deadline.
func fetchOne[T any](c *Coordinator, ctx context.Context, what string, issue func(context.Context, func(*T, error))) (*T, error) {
	notify := make(chan struct{}, 1)
	var mu sync.Mutex
	var got *T
	var gerr error
	done := false
	cctx, cancel := context.WithCancel(ctx)
	defer cancel()
	issue(cctx, func(m *T, err error) {
		mu.Lock()
		if !done {
			got, gerr, done = m, err, true
		}
		mu.Unlock()
		select {
		case notify <- struct{}{}:
		default:
		}
	})
	deadline := c.clock.Now().Add(c.opts.AttemptTimeout)
	for {
		mu.Lock()
		d, m, err := done, got, gerr
		mu.Unlock()
		if d {
			return m, err
		}
		switch c.clock.Wait(ctx, notify, deadline) {
		case WaitCanceled:
			return nil, ctx.Err()
		case WaitDeadline:
			mu.Lock()
			d, m, err = done, got, gerr
			mu.Unlock()
			if d {
				return m, err
			}
			return nil, &RPCError{Status: 0, Kind: "timeout", Msg: fmt.Sprintf("%s exceeded %v", what, c.opts.AttemptTimeout)}
		}
	}
}

// fetchMeta is a synchronous-over-async /internal/meta call.
func (c *Coordinator) fetchMeta(ctx context.Context, ep string) (*Meta, error) {
	return fetchOne(c, ctx, "meta from "+ep, func(cctx context.Context, deliver func(*Meta, error)) {
		c.tr.Meta(cctx, ep, deliver)
	})
}

// fetchMetrics is a synchronous-over-async /internal/metricsz scrape.
func (c *Coordinator) fetchMetrics(ctx context.Context, ep string) (*obs.Snapshot, error) {
	return fetchOne(c, ctx, "metrics from "+ep, func(cctx context.Context, deliver func(*obs.Snapshot, error)) {
		c.tr.Metrics(cctx, ep, deliver)
	})
}

// ShardScrape is one shard's leg of a federated metrics scrape: the
// snapshot from the first endpoint that answered, or the failure that
// exhausted the endpoint list. Err is the explicit scrape-failure
// marker — a fleet view never silently omits a shard.
type ShardScrape struct {
	Shard    int           `json:"shard"`
	Endpoint string        `json:"endpoint,omitempty"`
	Snapshot *obs.Snapshot `json:"snapshot,omitempty"`
	Err      string        `json:"error,omitempty"`
}

// ScrapeFleet fetches every shard's raw registry snapshot (primary
// first, replicas as fallback, per-attempt timeout each) and merges
// the successes: counters/gauges by sum, histograms bucket-wise (exact
// — see obs.MergeSnapshots). Scrapes run concurrently; the per-shard
// results come back ordered by shard id.
func (c *Coordinator) ScrapeFleet(ctx context.Context) ([]ShardScrape, obs.Snapshot) {
	scrapes := make([]ShardScrape, c.total)
	var wg sync.WaitGroup
	for s := 0; s < c.total; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			sc := ShardScrape{Shard: s}
			for _, ep := range c.eps[s] {
				snap, err := c.fetchMetrics(ctx, ep)
				if err == nil {
					sc.Endpoint, sc.Snapshot, sc.Err = ep, snap, ""
					break
				}
				sc.Err = err.Error()
			}
			scrapes[s] = sc
		}(s)
	}
	wg.Wait()
	parts := make([]obs.Snapshot, 0, c.total)
	for _, sc := range scrapes {
		if sc.Snapshot != nil {
			parts = append(parts, *sc.Snapshot)
		}
	}
	return scrapes, obs.MergeSnapshots(parts...)
}

// Epoch returns the fleet's snapshot epoch.
func (c *Coordinator) Epoch() uint64 { return c.epoch }

// CacheEpoch returns the fleet-wide cache-invalidation epoch: the
// snapshot epoch every shard agreed on at bootstrap, advanced every
// time the coordinator's view of the collection changes — a shard
// reports a larger document count (growDir) or a shard's health
// transitions to degraded. The serving layer keys its merged-result
// cache by this value. The shard-side document count is learned lazily
// (from reply metadata, the fleet has no push channel), so a shard-side
// add invalidates when its first post-add reply arrives; the public
// fleet surface is read-only (/add is 501), which makes that window
// unobservable through the coordinator itself. Partial results are
// never cached at all, so degraded-window responses cannot be replayed
// as complete (see internal/serve).
func (c *Coordinator) CacheEpoch() uint64 { return c.epoch + c.cacheGen.Load() }

// Name returns the collection's method name.
func (c *Coordinator) Name() string { return c.name }

// NumShards returns the fleet's shard count.
func (c *Coordinator) NumShards() int { return c.total }

// NumDocs returns the coordinator's current view of the collection
// size (grows as servers report adds).
func (c *Coordinator) NumDocs() int {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	return len(c.owner)
}

// growDir replays routing to extend the directory to docs entries.
// Registration order is global-id order, which is what keeps local ids
// ascending per shard — the tie-break invariant.
func (c *Coordinator) growDir(docs int) {
	c.dirMu.Lock()
	grew := docs > len(c.owner)
	for gid := len(c.owner); gid < docs; gid++ {
		s := shard.RouteDoc(c.seed, gid, c.total)
		c.owner = append(c.owner, int32(s))
		c.local = append(c.local, int32(len(c.global[s])))
		c.global[s] = append(c.global[s], int32(gid))
	}
	c.dirMu.Unlock()
	if grew {
		// The collection changed under us (a shard reported adds):
		// advance the cache epoch before any future query reads it, so
		// no merged result computed against the smaller collection is
		// served again. Bumped under no lock — CacheEpoch readers only
		// need monotonicity.
		c.cacheGen.Add(1)
	}
}

// lookup resolves a global doc id to its (home shard, local id). An id
// beyond the coordinator's current view is resolved by routing replay
// WITHOUT committing it to the directory — existence is settled by the
// home server, and a query for a bogus id must not inflate NumDocs.
// The directory itself only grows to counts servers actually reported.
func (c *Coordinator) lookup(docID int) (home, local int) {
	c.dirMu.RLock()
	defer c.dirMu.RUnlock()
	if docID < len(c.owner) {
		return int(c.owner[docID]), int(c.local[docID])
	}
	home = shard.RouteDoc(c.seed, docID, c.total)
	local = len(c.global[home])
	for gid := len(c.owner); gid < docID; gid++ {
		if shard.RouteDoc(c.seed, gid, c.total) == home {
			local++
		}
	}
	return home, local
}

// hedgeDelay returns how long a shard's leg waits before hedging to a
// replica: the shard's observed latency quantile once there is enough
// history, the fixed HedgeAfter floor before that.
func (c *Coordinator) hedgeDelay(s int) time.Duration {
	c.latMu.Lock()
	samples := append([]time.Duration(nil), c.lat[s]...)
	c.latMu.Unlock()
	if len(samples) < latMinSamples {
		return c.opts.HedgeAfter
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	return samples[int(c.opts.HedgeQuantile*float64(len(samples)-1))]
}

// recordLatency feeds a completed leg's latency into the shard's ring.
func (c *Coordinator) recordLatency(s int, d time.Duration) {
	c.latMu.Lock()
	if len(c.lat[s]) < latRingSize {
		c.lat[s] = append(c.lat[s], d)
	} else {
		c.lat[s][c.latPos[s]%latRingSize] = d
	}
	c.latPos[s]++
	c.latMu.Unlock()
}

// noteLegOK resets a shard's consecutive-failure streak.
func (c *Coordinator) noteLegOK(s int) {
	c.healthMu.Lock()
	c.consecFail[s] = 0
	c.healthMu.Unlock()
}

// noteLegFail extends a shard's failure streak and records why. The
// first failure of a streak is a health transition to degraded, which
// advances the cache epoch: results merged while every shard answered
// must not be conflated with what the degraded fleet can currently
// prove, and the next queries re-compute instead of replaying the
// healthy-era cache.
func (c *Coordinator) noteLegFail(s int, kind string) {
	c.healthMu.Lock()
	c.consecFail[s]++
	degraded := c.consecFail[s] == 1
	c.lastErrKind[s] = kind
	c.healthMu.Unlock()
	if degraded {
		c.cacheGen.Add(1)
	}
}

// errKind extracts a machine-readable failure kind for the health view.
func errKind(err error) string {
	if err == nil {
		return "budget_exhausted"
	}
	var rpc *RPCError
	if errors.As(err, &rpc) && rpc.Kind != "" {
		return rpc.Kind
	}
	if errors.Is(err, ErrEpochMismatch) {
		return "epoch_mismatch"
	}
	return "error"
}

// ShardHealth is one shard's entry in the coordinator's health view —
// the degradation state that existed internally since the retry/hedge
// machinery landed, exposed on GET /stats.
type ShardHealth struct {
	Shard int `json:"shard"`
	// Endpoints is primary first, then replicas — the hedge rotation.
	Endpoints []string `json:"endpoints"`
	// ConsecutiveFailures counts legs dropped since the last merged leg.
	ConsecutiveFailures int `json:"consecutive_failures"`
	// LastErrorKind names the most recent failure (empty: never failed).
	LastErrorKind string `json:"last_error_kind,omitempty"`
	// HedgeDelayNS is the current hedge trigger for this shard: the
	// observed latency-ring quantile (HedgeQuantile, default p90) once
	// the ring has latMinSamples, the fixed HedgeAfter floor before.
	HedgeDelayNS int64 `json:"hedge_delay_ns"`
	// LatencySamples is how many completed-leg latencies back the
	// estimate (capped at the ring size).
	LatencySamples int `json:"latency_samples"`
}

// Health reports the per-shard health view, ordered by shard id.
func (c *Coordinator) Health() []ShardHealth {
	out := make([]ShardHealth, c.total)
	for s := 0; s < c.total; s++ {
		c.latMu.Lock()
		samples := len(c.lat[s])
		c.latMu.Unlock()
		c.healthMu.Lock()
		fails, kind := c.consecFail[s], c.lastErrKind[s]
		c.healthMu.Unlock()
		out[s] = ShardHealth{
			Shard:               s,
			Endpoints:           append([]string(nil), c.eps[s]...),
			ConsecutiveFailures: fails,
			LastErrorKind:       kind,
			HedgeDelayNS:        int64(c.hedgeDelay(s)),
			LatencySamples:      samples,
		}
	}
	return out
}

// legKind selects which RPC a leg issues.
type legKind int

const (
	kindHome legKind = iota
	kindProbe
	kindExplain
)

// leg is one shard's state machine within a query: endpoints to
// rotate through, the attempt budget, in-flight accounting, and the
// winning response.
type leg struct {
	kind    legKind
	shard   int
	eps     []string
	started time.Time

	homeReq    *HomeRequest
	probeReq   *ProbeRequest
	explainReq *ExplainRequest

	attempts int          // attempts launched
	inflight int          // attempts neither answered nor timed out
	closed   map[int]bool // attempt → no longer expected to deliver
	nextEp   int
	hedged   bool
	cancels  []context.CancelFunc

	done    bool
	failed  error
	home    *HomeResponse
	probe   *ProbeResponse
	explain *ExplainResponse
}

// maxAttempts is a leg's total attempt budget: first + retries + one
// hedge slot.
func (l *leg) maxAttempts(retries int) int { return retries + 2 }

func (l *leg) cancelAll() {
	for _, cancel := range l.cancels {
		cancel()
	}
}

// delivery is one transport reply landing in the inbox.
type delivery struct {
	shard   int
	attempt int
	hedge   bool
	sentAt  time.Time
	home    *HomeResponse
	probe   *ProbeResponse
	explain *ExplainResponse
	err     error
}

// errBudget is the loop-internal "whole-query deadline reached"
// sentinel.
var errBudget = &RPCError{Status: http.StatusServiceUnavailable, Kind: "fleet_timeout", Msg: "query budget exhausted"}

// scatter is one query's event loop: the inbox, the action heap, and
// the legs in flight. It lives on a single goroutine; transports only
// touch the inbox.
type scatter struct {
	c        *Coordinator
	ctx      context.Context
	deadline time.Time
	tr       *obs.Trace

	mu     sync.Mutex
	queue  []delivery
	notify chan struct{}

	actions eventHeap
	aseq    int64

	legs    map[int]*leg
	nProbes int // expected list count on probe replies
	maxDocs int
}

func (c *Coordinator) newScatter(ctx context.Context, tr *obs.Trace) *scatter {
	return &scatter{
		c:        c,
		ctx:      ctx,
		deadline: c.clock.Now().Add(c.opts.Timeout),
		tr:       tr,
		notify:   make(chan struct{}, 1),
		legs:     make(map[int]*leg),
	}
}

// push is the transport-facing inbox append; safe from any goroutine.
func (sc *scatter) push(d delivery) {
	sc.mu.Lock()
	sc.queue = append(sc.queue, d)
	sc.mu.Unlock()
	select {
	case sc.notify <- struct{}{}:
	default:
	}
}

func (sc *scatter) pop() (delivery, bool) {
	sc.mu.Lock()
	defer sc.mu.Unlock()
	if len(sc.queue) == 0 {
		return delivery{}, false
	}
	d := sc.queue[0]
	sc.queue = sc.queue[1:]
	return d, true
}

// after schedules a coordinator action (retry, hedge, attempt timeout)
// on the loop's own heap. Actions fire from the loop goroutine only.
func (sc *scatter) after(d time.Duration, fn func()) {
	sc.aseq++
	heap.Push(&sc.actions, event{at: sc.c.clock.Now().Add(d), seq: sc.aseq, fn: fn})
}

// launch starts one attempt of a leg: pick the next endpoint
// round-robin, issue the RPC with a cancelable context, arm the
// attempt timeout, and (first attempt with replicas) arm the hedge.
func (sc *scatter) launch(l *leg, hedge bool) {
	ep := l.eps[l.nextEp%len(l.eps)]
	l.nextEp++
	attempt := l.attempts
	l.attempts++
	l.inflight++
	actx, cancel := context.WithCancel(sc.ctx)
	l.cancels = append(l.cancels, cancel)
	sentAt := sc.c.clock.Now()
	shardID := l.shard
	switch l.kind {
	case kindHome:
		sc.c.tr.Home(actx, ep, l.homeReq, func(r *HomeResponse, err error) {
			sc.push(delivery{shard: shardID, attempt: attempt, hedge: hedge, sentAt: sentAt, home: r, err: err})
		})
	case kindProbe:
		sc.c.tr.Probe(actx, ep, l.probeReq, func(r *ProbeResponse, err error) {
			sc.push(delivery{shard: shardID, attempt: attempt, hedge: hedge, sentAt: sentAt, probe: r, err: err})
		})
	case kindExplain:
		sc.c.tr.Explain(actx, ep, l.explainReq, func(r *ExplainResponse, err error) {
			sc.push(delivery{shard: shardID, attempt: attempt, hedge: hedge, sentAt: sentAt, explain: r, err: err})
		})
	}
	sc.after(sc.c.opts.AttemptTimeout, func() { sc.onAttemptTimeout(l, attempt, cancel) })
	if !hedge && attempt == 0 && len(l.eps) > 1 {
		sc.after(sc.c.hedgeDelay(l.shard), func() { sc.onHedgeTimer(l) })
	}
}

// startLeg registers and launches a leg for a shard.
func (sc *scatter) startLeg(l *leg) {
	l.closed = make(map[int]bool)
	l.started = sc.c.clock.Now()
	sc.legs[l.shard] = l
	sc.launch(l, false)
}

// onAttemptTimeout fires when an attempt outlives AttemptTimeout
// without delivering: cancel it and retry immediately (the backoff
// already happened — we waited the whole attempt budget), or fail the
// leg when nothing is left.
func (sc *scatter) onAttemptTimeout(l *leg, attempt int, cancel context.CancelFunc) {
	if l.done || l.failed != nil || l.closed[attempt] {
		return
	}
	l.closed[attempt] = true
	l.inflight--
	cancel()
	ctrAttemptTimeouts.Inc()
	if l.attempts < l.maxAttempts(sc.c.opts.Retries) {
		ctrRetries.Inc()
		sc.launch(l, false)
		return
	}
	if l.inflight == 0 {
		l.failed = &RPCError{Status: http.StatusGatewayTimeout, Kind: "leg_timeout",
			Msg: fmt.Sprintf("shard %d: all %d attempts timed out", l.shard, l.attempts)}
		l.cancelAll()
	}
}

// onHedgeTimer fires when a leg's first attempt has outlived the hedge
// delay: launch a parallel attempt at the next endpoint (the replica).
func (sc *scatter) onHedgeTimer(l *leg) {
	if l.done || l.failed != nil || l.hedged || l.attempts >= l.maxAttempts(sc.c.opts.Retries) {
		return
	}
	l.hedged = true
	ctrHedges.Inc()
	sc.launch(l, true)
}

// onError handles a delivered failure: transient errors consume a
// retry (with doubling backoff) against the next endpoint; permanent
// ones fail the leg at once.
func (sc *scatter) onError(l *leg, err error) {
	if !IsTransient(err) {
		l.failed = err
		l.cancelAll()
		return
	}
	if l.attempts < l.maxAttempts(sc.c.opts.Retries) {
		backoff := sc.c.opts.Backoff << uint(l.attempts-1)
		sc.after(backoff, func() {
			if l.done || l.failed != nil {
				return
			}
			ctrRetries.Inc()
			sc.launch(l, false)
		})
		return
	}
	if l.inflight == 0 {
		l.failed = err
		l.cancelAll()
	}
}

// handleDelivery is the loop-side intake for one reply: dedup against
// finished legs and closed attempts, validate epoch and shape, then
// either settle the leg or route the error.
func (sc *scatter) handleDelivery(d delivery) {
	l := sc.legs[d.shard]
	if l == nil || l.done || l.failed != nil || l.closed[d.attempt] {
		ctrDupReplies.Inc()
		return
	}
	l.closed[d.attempt] = true
	l.inflight--
	if d.err != nil {
		sc.onError(l, d.err)
		return
	}
	var epoch uint64
	var docs int
	switch {
	case d.home != nil:
		epoch, docs = d.home.Epoch, d.home.Docs
	case d.probe != nil:
		epoch, docs = d.probe.Epoch, d.probe.Docs
		if len(d.probe.Lists) != sc.nProbes {
			sc.onError(l, &RPCError{Status: http.StatusBadGateway, Kind: "malformed",
				Msg: fmt.Sprintf("shard %d returned %d lists for %d probes", d.shard, len(d.probe.Lists), sc.nProbes)})
			return
		}
	case d.explain != nil:
		epoch = d.explain.Epoch
		if len(d.explain.Items) != len(l.explainReq.Items) {
			sc.onError(l, &RPCError{Status: http.StatusBadGateway, Kind: "malformed",
				Msg: fmt.Sprintf("shard %d returned %d explain items for %d", d.shard, len(d.explain.Items), len(l.explainReq.Items))})
			return
		}
	default:
		sc.onError(l, &RPCError{Status: http.StatusBadGateway, Kind: "malformed", Msg: "empty delivery"})
		return
	}
	if epoch != sc.c.epoch {
		ctrEpochMismatch.Inc()
		sc.onError(l, ErrEpochMismatch)
		return
	}
	if docs > sc.maxDocs {
		sc.maxDocs = docs
	}
	l.done = true
	l.home, l.probe, l.explain = d.home, d.probe, d.explain
	l.cancelAll()
	now := sc.c.clock.Now()
	sc.c.recordLatency(l.shard, now.Sub(d.sentAt))
	sc.c.spanLeg[l.shard].Record(now.Sub(l.started))
	if d.hedge {
		ctrHedgeWins.Inc()
	}
	if sc.tr != nil {
		hedge := int64(0)
		if d.hedge {
			hedge = 1
		}
		sc.tr.Event("fleet.leg",
			obs.N("shard", int64(l.shard)),
			obs.N("attempts", int64(l.attempts)),
			obs.N("hedge_won", hedge),
			obs.N("rtt_ns", int64(now.Sub(d.sentAt))))
		sc.stitchRemote(l.shard, d)
	}
}

// stitchRemote splices a reply's shard-side child-trace events into the
// coordinator's trace, directly after the leg's own "fleet.leg" marker.
// Remote offsets are relative to the server's request receipt, which
// lies inside [sentAt, now] on the coordinator's clock — so each event
// keeps its remote-relative offset as an attribute (remote_at_ns) and
// the hop is bounded by the fleet.leg marker's rtt_ns, with no remote
// wall clock trusted anywhere. The stitched events' own At values are
// stamped at stitch time, preserving the trace's per-process
// monotonicity invariant.
func (sc *scatter) stitchRemote(shard int, d delivery) {
	var remote []obs.TraceEvent
	switch {
	case d.home != nil:
		remote = d.home.Trace
	case d.probe != nil:
		remote = d.probe.Trace
	case d.explain != nil:
		remote = d.explain.Trace
	}
	for _, ev := range remote {
		attrs := make([]obs.Attr, 0, len(ev.Attrs)+2)
		attrs = append(attrs,
			obs.N("shard", int64(shard)),
			obs.N("remote_at_ns", int64(ev.At)))
		attrs = append(attrs, ev.Attrs...)
		sc.tr.Event("remote."+ev.Name, attrs...)
	}
}

// await runs the loop until done reports true, the query budget
// expires (errBudget), or the context is canceled. Tie policy at equal
// instants: deliveries beat actions, so a reply landing exactly at its
// attempt's deadline still wins.
func (sc *scatter) await(done func() bool) error {
	for {
		if d, ok := sc.pop(); ok {
			sc.handleDelivery(d)
			continue
		}
		now := sc.c.clock.Now()
		if len(sc.actions) > 0 && !sc.actions[0].at.After(now) {
			ev := heap.Pop(&sc.actions).(event)
			ev.fn()
			continue
		}
		if done() {
			return nil
		}
		until := sc.deadline
		if len(sc.actions) > 0 && sc.actions[0].at.Before(until) {
			until = sc.actions[0].at
		}
		switch sc.c.clock.Wait(sc.ctx, sc.notify, until) {
		case WaitCanceled:
			return sc.ctx.Err()
		case WaitNotified:
			continue
		case WaitDeadline:
			if !sc.c.clock.Now().Before(sc.deadline) {
				// Budget gone. One last drain so replies that raced the
				// deadline still count.
				if d, ok := sc.pop(); ok {
					sc.handleDelivery(d)
					if done() {
						return nil
					}
				}
				return errBudget
			}
		}
	}
}

// cancelAllLegs releases every outstanding attempt — the mid-scatter
// cancellation and deadline paths both end here, so no leg goroutine
// outlives the query.
func (sc *scatter) cancelAllLegs() {
	for _, l := range sc.legs {
		l.cancelAll()
	}
}

// coordList mirrors shard.Group's mergedList: one cluster's globally
// merged, trimmed candidate list plus the Algorithm 2 divisor.
type coordList struct {
	cluster int
	items   []topk.Item
	norm    float64
}

// gatherOut is the scatter-gather front half's product, shared by
// Related and RelatedExplained.
type gatherOut struct {
	home    int
	local   int
	probes  []WireProbe
	n       int
	lists   []coordList
	scores  map[int]float64
	missing []int
}

// gather runs the two-phase networked scatter: home leg first (probes
// + home lists + depth), then every sibling in parallel with
// home-seeded floors, then the global merge. Sibling failures fall
// into missing; home failures are returned as typed errors.
func (c *Coordinator) gather(ctx context.Context, docID, k int, tr *obs.Trace) (*gatherOut, error) {
	if docID < 0 {
		return nil, ErrUnknownDoc
	}
	home, local := c.lookup(docID)
	sc := c.newScatter(ctx, tr)
	defer sc.cancelAllLegs()
	// Trace propagation is gated on the fleet's minimum wire version:
	// version-1 servers decode strictly and would reject the fields.
	traced := tr != nil && c.wire >= WireVersion
	var traceID string
	if traced {
		traceID = tr.ID()
	}
	if tr != nil {
		tr.Event("fleet.scatter", obs.N("shards", int64(c.total)), obs.N("home", int64(home)))
	}

	// Phase 1: the home leg. Without it there are no probes, no frozen
	// factors, and no depth — nothing correct to degrade to.
	hl := &leg{kind: kindHome, shard: home, eps: c.eps[home],
		homeReq: &HomeRequest{Shard: home, LocalDoc: local, K: k, TraceID: traceID, Trace: traced}}
	sc.startLeg(hl)
	err := sc.await(func() bool { return hl.done || hl.failed != nil })
	if err != nil && err != errBudget {
		return nil, err // context canceled mid-scatter
	}
	if !hl.done {
		ferr := hl.failed
		if ferr == nil {
			ferr = errBudget
		}
		var rpc *RPCError
		if errors.As(ferr, &rpc) && rpc.Status == http.StatusNotFound {
			return nil, ErrUnknownDoc
		}
		c.ctrLegMiss[home].Inc()
		c.noteLegFail(home, errKind(ferr))
		if tr != nil {
			tr.Event("fleet.leg.missing", obs.N("shard", int64(home)), obs.A("kind", errKind(ferr)))
		}
		return nil, &RPCError{Status: http.StatusServiceUnavailable, Kind: "fleet_unavailable",
			Msg: fmt.Sprintf("home shard %d unavailable: %v", home, ferr)}
	}
	resp := hl.home
	if len(resp.Probes) > 0 && len(resp.Lists) != len(resp.Probes) {
		return nil, &RPCError{Status: http.StatusBadGateway, Kind: "malformed",
			Msg: fmt.Sprintf("home shard %d returned %d lists for %d probes", home, len(resp.Lists), len(resp.Probes))}
	}
	c.ctrLegOK[home].Inc()
	c.noteLegOK(home)
	sc.nProbes = len(resp.Probes)

	// Phase 2: siblings, all at the home-reported depth, pruning under
	// the home floors (each floor is a proven lower bound on the merged
	// list's n-th score — see shard.Group.gather).
	n := resp.N
	floors := make([]float64, len(resp.Probes))
	for i, l := range resp.Lists {
		if len(l) >= n && n > 0 {
			floors[i] = l[n-1].Score
		}
	}
	if c.total > 1 {
		probeReq := func(s int) *ProbeRequest {
			return &ProbeRequest{Shard: s, Probes: resp.Probes, Depth: n, Floors: floors,
				TraceID: traceID, Trace: traced}
		}
		for s := 0; s < c.total; s++ {
			if s == home {
				continue
			}
			sc.startLeg(&leg{kind: kindProbe, shard: s, eps: c.eps[s], probeReq: probeReq(s)})
		}
		err = sc.await(func() bool {
			for s, l := range sc.legs {
				if s != home && !l.done && l.failed == nil {
					return false
				}
			}
			return true
		})
		if err != nil && err != errBudget {
			return nil, err // context canceled mid-scatter
		}
	}
	sc.cancelAllLegs()

	out := &gatherOut{home: home, local: local, probes: resp.Probes, n: n}
	for s := 0; s < c.total; s++ {
		if s == home {
			continue
		}
		l := sc.legs[s]
		if l != nil && l.done {
			c.ctrLegOK[s].Inc()
			c.noteLegOK(s)
			continue
		}
		out.missing = append(out.missing, s)
		c.ctrLegMiss[s].Inc()
		var kind string
		if l != nil {
			kind = errKind(l.failed)
		} else {
			kind = "not_started"
		}
		c.noteLegFail(s, kind)
		if tr != nil {
			tr.Event("fleet.leg.missing", obs.N("shard", int64(s)), obs.A("kind", kind))
		}
	}
	if len(out.missing) > 0 {
		ctrPartial.Inc()
		if tr != nil {
			tr.Event("fleet.partial", obs.N("missing", int64(len(out.missing))))
		}
	}

	// Merge: identical to shard.Group.gather — per probe, one top-n
	// heap over every answering shard's list in ascending shard order,
	// trim, then the Algorithm 2 sums in ascending probe order.
	if sc.maxDocs > c.NumDocs() {
		c.growDir(sc.maxDocs)
	}
	out.scores = make(map[int]float64)
	out.lists = make([]coordList, len(resp.Probes))
	c.dirMu.RLock()
	for i := range resp.Probes {
		col := topk.New(n)
		for s := 0; s < c.total; s++ {
			var wl []WireResult
			if s == home {
				wl = resp.Lists[i]
			} else if l := sc.legs[s]; l != nil && l.done {
				wl = l.probe.Lists[i]
			} else {
				continue
			}
			glb := c.global[s]
			for _, r := range wl {
				if r.Doc >= len(glb) {
					continue // committed but not yet registered coordinator-side
				}
				col.Offer(int(glb[r.Doc]), r.Score)
			}
		}
		items := col.Results()
		norm := 1.0
		if len(items) > 0 {
			cut, nrm := c.mcfg.TrimParams(items[0].Score)
			norm = nrm
			for j, it := range items {
				if it.Score < cut {
					items = items[:j]
					break
				}
				out.scores[it.ID] += it.Score / norm
			}
		}
		out.lists[i] = coordList{cluster: resp.Probes[i].Cluster, items: items, norm: norm}
	}
	c.dirMu.RUnlock()
	return out, nil
}

// Related answers one top-k query over the networked fleet. With all
// shards answering, the result is bit-identical to shard.Group and the
// single index; with siblings missing it is the exact merge over the
// remaining shards, flagged Partial with the missing shard ids.
func (c *Coordinator) Related(ctx context.Context, docID, k int, tr *obs.Trace) (*FleetResult, error) {
	if k <= 0 {
		return &FleetResult{}, nil
	}
	tm := spanFleetRelated.Start()
	defer tm.Stop()
	g, err := c.gather(ctx, docID, k, tr)
	if err != nil {
		return nil, err
	}
	return &FleetResult{
		Results: match.TopKScores(g.scores, k, docID),
		Partial: len(g.missing) > 0,
		Missing: g.missing,
	}, nil
}

// RelatedExplained is Related plus term-level Eq 7–9 breakdowns,
// fetched from each result document's owning shard. Explain legs run
// under the same budget machinery; a shard that cannot answer leaves
// its documents' Clusters empty and joins Missing.
func (c *Coordinator) RelatedExplained(ctx context.Context, docID, k int, tr *obs.Trace) (*FleetResult, []match.Explanation, error) {
	if k <= 0 {
		return &FleetResult{}, nil, nil
	}
	tm := spanFleetRelated.Start()
	defer tm.Stop()
	g, err := c.gather(ctx, docID, k, tr)
	if err != nil {
		return nil, nil, err
	}
	results := match.TopKScores(g.scores, k, docID)

	// Plan the explain batches: for each result, every merged list it
	// appears in contributes one (doc, cluster) item on its owning
	// shard, carrying the probe's term context and the list's divisor.
	type ref struct{ ri, ci int } // result index, cluster slot
	exps := make([]match.Explanation, len(results))
	reqs := make(map[int]*ExplainRequest)
	refs := make(map[int][]ref)
	c.dirMu.RLock()
	for ri, r := range results {
		exps[ri] = match.Explanation{DocID: r.DocID, Score: r.Score}
		s, l := int(c.owner[r.DocID]), int(c.local[r.DocID])
		for i, ml := range g.lists {
			found := false
			var score float64
			for _, it := range ml.items {
				if it.ID == r.DocID {
					found, score = true, it.Score/ml.norm
					break
				}
			}
			if !found {
				continue
			}
			exps[ri].Clusters = append(exps[ri].Clusters, match.ClusterContribution{
				Cluster: ml.cluster,
				Score:   score,
			})
			req := reqs[s]
			if req == nil {
				req = &ExplainRequest{Shard: s}
				reqs[s] = req
			}
			req.Items = append(req.Items, ExplainItem{
				LocalDoc: l, Cluster: ml.cluster,
				Terms: g.probes[i].Terms, QF: g.probes[i].QF, Norm: ml.norm,
			})
			refs[s] = append(refs[s], ref{ri: ri, ci: len(exps[ri].Clusters) - 1})
		}
	}
	c.dirMu.RUnlock()

	if len(reqs) > 0 {
		sc := c.newScatter(ctx, tr)
		defer sc.cancelAllLegs()
		for s, req := range reqs {
			if tr != nil && c.wire >= WireVersion {
				req.TraceID, req.Trace = tr.ID(), true
			}
			sc.startLeg(&leg{kind: kindExplain, shard: s, eps: c.eps[s], explainReq: req})
		}
		err = sc.await(func() bool {
			for _, l := range sc.legs {
				if !l.done && l.failed == nil {
					return false
				}
			}
			return true
		})
		if err != nil && err != errBudget {
			return nil, nil, err
		}
		sc.cancelAllLegs()
		for s, l := range sc.legs {
			if l.done {
				for j, rf := range refs[s] {
					exps[rf.ri].Clusters[rf.ci].Terms = l.explain.Items[j]
				}
				continue
			}
			already := false
			for _, m := range g.missing {
				already = already || m == s
			}
			if !already {
				g.missing = append(g.missing, s)
				ctrPartial.Inc()
			}
		}
		sort.Ints(g.missing)
	}

	return &FleetResult{
		Results: results,
		Partial: len(g.missing) > 0,
		Missing: g.missing,
	}, exps, nil
}
