package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"reflect"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/segment"
	"repro/internal/shard"
	"repro/internal/topk"
)

// The tests in this file pin the networked fleet's headline contract:
// with every shard answering, a Coordinator over any Transport returns
// byte-for-byte the same ranking as the in-process shard.Group and the
// single unsharded matcher — at every shard count, with the max-score
// pruning forced both on and off, over the golden corpus. The
// fault-injection scenarios (what happens when shards do NOT answer)
// live in faultinject_test.go.

func genDocs(t testing.TB, domain forum.Domain, n int, seed int64) []*segment.Doc {
	t.Helper()
	posts := forum.Generate(forum.Config{Domain: domain, NumPosts: n, Seed: seed})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	return docs
}

// testFleet is one in-process backend: the unsharded oracle, the
// sharded oracle, and the same partitions wrapped as fleet Hosts behind
// a LocalTransport.
type testFleet struct {
	mr    *match.MR
	g     *shard.Group
	hosts map[int]*Host
	lt    *LocalTransport
}

// epName names the LocalTransport endpoint for (shard, replica);
// replica 0 is the primary.
func epName(s, r int) string {
	if r == 0 {
		return fmt.Sprintf("s%d", s)
	}
	return fmt.Sprintf("s%d-r%d", s, r)
}

// buildBackend splits one matcher into nShards partitions and serves
// each as a Host at its primary endpoint plus `replicas` extra
// endpoints (same host — a read replica of the same snapshot).
func buildBackend(t testing.TB, docs []*segment.Doc, cfg match.MRConfig, nShards int, seed uint64, replicas int) *testFleet {
	t.Helper()
	mr := match.NewMR("MR", docs, cfg)
	g, err := shard.NewGroup(mr, nShards, seed)
	if err != nil {
		t.Fatalf("NewGroup(%d): %v", nShards, err)
	}
	f := &testFleet{mr: mr, g: g, hosts: HostsForGroup(g), lt: NewLocalTransport()}
	for s := 0; s < nShards; s++ {
		for r := 0; r <= replicas; r++ {
			f.lt.AddHost(epName(s, r), f.hosts[s])
		}
	}
	return f
}

// topo builds the coordinator-side endpoint map with the given replica
// count per shard.
func (f *testFleet) topo(replicas int) Topology {
	var topo Topology
	for s := 0; s < f.g.NumShards(); s++ {
		se := ShardEndpoints{Shard: s, Primary: epName(s, 0)}
		for r := 1; r <= replicas; r++ {
			se.Replicas = append(se.Replicas, epName(s, r))
		}
		topo.Endpoints = append(topo.Endpoints, se)
	}
	return topo
}

// vopts is the fault-suite Options profile: a virtual clock and round
// numbers so scripted schedules are easy to reason about. All timing
// below is virtual — the suite never sleeps.
func vopts(tr Transport, clock Clock) Options {
	return Options{
		Transport:      tr,
		Clock:          clock,
		Timeout:        time.Second,
		AttemptTimeout: 100 * time.Millisecond,
		Retries:        2,
		Backoff:        10 * time.Millisecond,
		HedgeAfter:     50 * time.Millisecond,
	}
}

// coordinator bootstraps a Coordinator over the backend or fails the
// test.
func (f *testFleet) coordinator(t testing.TB, topo Topology, opts Options) *Coordinator {
	t.Helper()
	c, err := New(context.Background(), topo, opts)
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	return c
}

// mustJSON marshals for byte-for-byte comparisons: Go's float64
// encoding is shortest-round-trip, so equal bytes ⇔ bit-equal scores
// in identical order.
func mustJSON(t testing.TB, v any) []byte {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	return b
}

// sameResults asserts bit-for-bit equality of two rankings.
func sameResults(t *testing.T, ctx string, want, got []match.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results want vs %d got\nwant: %v\ngot:  %v", ctx, len(want), len(got), want, got)
	}
	for i := range want {
		if want[i].DocID != got[i].DocID || want[i].Score != got[i].Score {
			t.Fatalf("%s: result %d diverges: want %d/%v got %d/%v",
				ctx, i, want[i].DocID, want[i].Score, got[i].DocID, got[i].Score)
		}
	}
}

// forcePruning pins index.PruneMinUnits for the test (global knob, so
// these tests must not run in parallel).
func forcePruning(t *testing.T, minUnits int) {
	t.Helper()
	old := index.PruneMinUnits
	index.PruneMinUnits = minUnits
	t.Cleanup(func() { index.PruneMinUnits = old })
}

// TestFleetEquivalenceMatrix is satellite (2): networked fleet over a
// fault-free transport vs in-process shard.Group vs single index,
// byte-for-byte, at shard counts {1, 2, 4}, with max-score pruning
// forced on and off.
func TestFleetEquivalenceMatrix(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 200, 42)
	pruneModes := []struct {
		name     string
		minUnits int
	}{
		{"pruned", 1},
		{"exhaustive", 1 << 30},
	}
	for _, pm := range pruneModes {
		t.Run(pm.name, func(t *testing.T) {
			forcePruning(t, pm.minUnits)
			for _, ns := range []int{1, 2, 4} {
				t.Run(fmt.Sprintf("shards%d", ns), func(t *testing.T) {
					f := buildBackend(t, docs, match.MRConfig{Seed: 7}, ns, 42, 0)
					c := f.coordinator(t, f.topo(0), vopts(f.lt, NewVirtualClock(time.Unix(0, 0))))
					for doc := 0; doc < len(docs); doc++ {
						for _, k := range []int{1, 5, 12} {
							single := f.mr.Match(doc, k)
							group := f.g.Match(doc, k)
							res, err := c.Related(context.Background(), doc, k, nil)
							if err != nil {
								t.Fatalf("doc %d k %d: fleet error: %v", doc, k, err)
							}
							if res.Partial || len(res.Missing) != 0 {
								t.Fatalf("doc %d k %d: healthy fleet reported partial=%v missing=%v", doc, k, res.Partial, res.Missing)
							}
							ctx := fmt.Sprintf("doc %d k %d", doc, k)
							sameResults(t, ctx+" group-vs-single", single, group)
							sameResults(t, ctx+" fleet-vs-single", single, res.Results)
							if sb, fb := mustJSON(t, single), mustJSON(t, res.Results); !bytes.Equal(sb, fb) {
								t.Fatalf("%s: JSON diverges:\nsingle: %s\nfleet:  %s", ctx, sb, fb)
							}
						}
					}
				})
			}
		})
	}
}

// TestFleetExplainEquivalence pins the networked explain path to the
// in-process one: same rankings, same per-cluster contributions, same
// term breakdowns, and cluster contributions that sum back to the
// final score.
func TestFleetExplainEquivalence(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 200, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	c := f.coordinator(t, f.topo(0), vopts(f.lt, NewVirtualClock(time.Unix(0, 0))))
	for _, doc := range []int{0, 17, 63, 149} {
		k := 5
		wantRes, wantExp := f.g.MatchExplained(doc, k)
		res, exps, err := c.RelatedExplained(context.Background(), doc, k, nil)
		if err != nil {
			t.Fatalf("doc %d: fleet explain error: %v", doc, err)
		}
		if res.Partial {
			t.Fatalf("doc %d: healthy fleet explain reported partial", doc)
		}
		ctx := fmt.Sprintf("doc %d", doc)
		sameResults(t, ctx, wantRes, res.Results)
		if !reflect.DeepEqual(wantExp, exps) {
			t.Fatalf("%s: explanations diverge:\nwant: %+v\ngot:  %+v", ctx, wantExp, exps)
		}
		for i, e := range exps {
			sum := 0.0
			for _, cc := range e.Clusters {
				sum += cc.Score
			}
			if diff := sum - res.Results[i].Score; diff > 1e-9 || diff < -1e-9 {
				t.Fatalf("%s: result %d cluster contributions sum to %v, score is %v", ctx, i, sum, res.Results[i].Score)
			}
		}
	}
}

// TestLoadHostDirFleet runs the snapshot path end to end: WriteDir,
// two hosts each loading a two-shard slice of the directory, a
// coordinator routing a four-shard topology onto them — results still
// byte-identical to the single matcher.
func TestLoadHostDirFleet(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 160, 42)
	mr := match.NewMR("MR", docs, match.MRConfig{Seed: 7})
	g, err := shard.NewGroup(mr, 4, 99)
	if err != nil {
		t.Fatalf("NewGroup: %v", err)
	}
	dir := t.TempDir()
	if err := g.WriteDir(dir); err != nil {
		t.Fatalf("WriteDir: %v", err)
	}
	hostA, err := LoadHostDir(dir, []int{0, 1})
	if err != nil {
		t.Fatalf("LoadHostDir A: %v", err)
	}
	hostB, err := LoadHostDir(dir, []int{2, 3})
	if err != nil {
		t.Fatalf("LoadHostDir B: %v", err)
	}
	if hostA.Epoch() != hostB.Epoch() {
		t.Fatalf("hosts from one directory disagree on epoch: %d vs %d", hostA.Epoch(), hostB.Epoch())
	}
	if !hostA.Owns(0) || !hostA.Owns(1) || hostA.Owns(2) {
		t.Fatalf("host A owns wrong shards: %v", hostA.Meta().Shards)
	}
	lt := NewLocalTransport()
	lt.AddHost("a", hostA)
	lt.AddHost("b", hostB)
	topo := Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "a"}, {Shard: 1, Primary: "a"},
		{Shard: 2, Primary: "b"}, {Shard: 3, Primary: "b"},
	}}
	c, err := New(context.Background(), topo, vopts(lt, NewVirtualClock(time.Unix(0, 0))))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	if c.NumDocs() != len(docs) || c.NumShards() != 4 {
		t.Fatalf("coordinator sees %d docs / %d shards, want %d / 4", c.NumDocs(), c.NumShards(), len(docs))
	}
	for doc := 0; doc < len(docs); doc += 7 {
		want := mr.Match(doc, 8)
		res, err := c.Related(context.Background(), doc, 8, nil)
		if err != nil {
			t.Fatalf("doc %d: %v", doc, err)
		}
		if res.Partial {
			t.Fatalf("doc %d: partial over healthy snapshot fleet", doc)
		}
		sameResults(t, fmt.Sprintf("doc %d", doc), want, res.Results)
	}
}

// refPartial is the test-side oracle for degraded answers: an
// independent reimplementation of the scatter-gather merge over the
// non-missing shards only, straight against the shard matchers. A
// partial fleet answer must equal this exactly — "partial" means
// missing shards were excluded, never that the surviving merge was
// approximated.
func refPartial(t testing.TB, f *testFleet, docID, k int, missing map[int]bool) []match.Result {
	t.Helper()
	home := f.g.Route(docID)
	if missing[home] {
		t.Fatalf("refPartial: home shard %d cannot be missing (that is a typed error, not a partial)", home)
	}
	nShards := f.g.NumShards()
	local := 0
	glb := make([][]int, nShards)
	for d := 0; d < f.g.NumDocs(); d++ {
		s := f.g.Route(d)
		if d == docID {
			local = len(glb[s])
		}
		glb[s] = append(glb[s], d)
	}
	hmr := f.g.ShardMR(home)
	probes := hmr.QuerySegs(local)
	if probes == nil {
		t.Fatalf("refPartial: doc %d has no segments", docID)
	}
	cfg := f.mr.Config()
	n := cfg.ListDepth(k)
	homeLists := hmr.QueryClusterLists(probes, n, local, nil, nil)
	floors := make([]float64, len(probes))
	for i, l := range homeLists {
		if n > 0 && len(l) >= n {
			floors[i] = l[n-1].Score
		}
	}
	lists := make(map[int][][]match.Result)
	lists[home] = homeLists
	for s := 0; s < nShards; s++ {
		if s == home || missing[s] {
			continue
		}
		lists[s] = f.g.ShardMR(s).QueryClusterLists(probes, n, -1, floors, nil)
	}
	scores := make(map[int]float64)
	for i := range probes {
		col := topk.New(n)
		for s := 0; s < nShards; s++ {
			sl, ok := lists[s]
			if !ok {
				continue
			}
			for _, r := range sl[i] {
				col.Offer(glb[s][r.DocID], r.Score)
			}
		}
		items := col.Results()
		if len(items) == 0 {
			continue
		}
		cut, norm := cfg.TrimParams(items[0].Score)
		for _, it := range items {
			if it.Score < cut {
				break
			}
			scores[it.ID] += it.Score / norm
		}
	}
	return match.TopKScores(scores, k, docID)
}

// TestRefPartialOracleMatchesGroup sanity-checks the oracle itself:
// with nothing missing it must agree with shard.Group bit-for-bit,
// otherwise every partial assertion downstream would be vacuous.
func TestRefPartialOracleMatchesGroup(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	for doc := 0; doc < len(docs); doc += 11 {
		want := f.g.Match(doc, 6)
		got := refPartial(t, f, doc, 6, nil)
		sameResults(t, fmt.Sprintf("doc %d", doc), want, got)
	}
}
