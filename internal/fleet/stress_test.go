package fleet

import (
	"context"
	"errors"
	"fmt"
	"hash/fnv"
	"sync"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/obs"
)

// The -race stress test: concurrent Related traffic against a
// chaos-degraded live fleet while a writer keeps adding documents
// through the underlying shard.Group (the hosts share its matchers, so
// adds become visible to probes mid-flight). Exact rankings are
// unstable under concurrent writes by design, so each response is
// checked against the structural contract instead:
//
//   - never torn: no duplicate ids, ids in range, reference doc
//     excluded, at most k results, (score desc, id asc) order
//   - Partial=false ⇔ Missing empty; Missing never contains the home
//     shard, is sorted, and has no duplicates
//   - errors are typed (*RPCError) or context errors — nothing leaks
//     raw internal failures
//   - fleet counters only ever move forward while traffic runs
//
// Once the fleet quiesces, a fresh fault-free coordinator must again be
// bit-identical to the in-process group over the grown corpus.
func TestFleetChaosStress(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	docs := genDocs(t, forum.TechSupport, 120, 42)
	extra := genDocs(t, forum.TechSupport, 160, 42)[120:]
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 1)

	clock := RealClock{}
	ch := NewChaos(f.lt, clock)
	// Seeded degradation: every call's fate is a pure function of
	// (endpoint, kind, call index). Meta stays healthy so bootstrap and
	// re-bootstrap always work.
	ch.Fallback = func(endpoint, kind string, call int) ChaosAction {
		if kind == "meta" {
			return ChaosAction{}
		}
		h := fnv.New64a()
		fmt.Fprintf(h, "%s/%s/%d", endpoint, kind, call)
		x := h.Sum64()
		switch {
		case x%13 == 0:
			return ChaosAction{Drop: true}
		case x%7 == 0:
			return ChaosAction{Err: &RPCError{Status: 500, Kind: "injected", Msg: "stress flap"}}
		case x%3 == 0:
			return ChaosAction{Delay: time.Duration(x%4) * time.Millisecond}
		}
		return ChaosAction{}
	}
	c, err := New(context.Background(), f.topo(1), Options{
		Transport:      ch,
		Clock:          clock,
		Timeout:        2 * time.Second,
		AttemptTimeout: 50 * time.Millisecond,
		Retries:        2,
		Backoff:        time.Millisecond,
		HedgeAfter:     5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}

	// Monotone-counter watcher: samples the fleet instruments while
	// traffic runs and fails on any decrease.
	watched := []*obs.Counter{
		ctrRetries, ctrHedges, ctrHedgeWins, ctrPartial,
		ctrDupReplies, ctrAttemptTimeouts, ctrEpochMismatch,
	}
	watched = append(watched, c.ctrLegOK...)
	watched = append(watched, c.ctrLegMiss...)
	watchStop := make(chan struct{})
	watchDone := make(chan struct{})
	var watchErr error
	go func() {
		defer close(watchDone)
		last := make([]int64, len(watched))
		for i, w := range watched {
			last[i] = w.Value()
		}
		for {
			select {
			case <-time.After(2 * time.Millisecond):
			case <-watchStop:
				return
			}
			for i, w := range watched {
				v := w.Value()
				if v < last[i] {
					watchErr = fmt.Errorf("counter %s went backwards: %d -> %d", w.Name(), last[i], v)
					return
				}
				last[i] = v
			}
		}
	}()

	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	fail := func(format string, args ...any) {
		mu.Lock()
		if firstErr == nil {
			firstErr = fmt.Errorf(format, args...)
		}
		mu.Unlock()
	}

	// Writer: grows the collection through the live group.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for _, d := range extra {
			f.g.Add(d)
		}
	}()

	// Readers: shape-check every response.
	const readers, queriesPerReader, k = 6, 25, 5
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for q := 0; q < queriesPerReader; q++ {
				doc := (r*queriesPerReader + q*17) % len(docs)
				res, err := c.Related(context.Background(), doc, k, nil)
				if err != nil {
					var rpc *RPCError
					if !errors.As(err, &rpc) && !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
						fail("reader %d doc %d: untyped error %T: %v", r, doc, err, err)
					}
					continue
				}
				if len(res.Results) > k {
					fail("doc %d: %d results for k=%d", doc, len(res.Results), k)
				}
				maxID := f.g.NumDocs() // sampled after the response; ids only grow
				seen := make(map[int]bool, len(res.Results))
				for i, rr := range res.Results {
					if rr.DocID == doc {
						fail("doc %d: reference doc in its own results", doc)
					}
					if rr.DocID < 0 || rr.DocID >= maxID {
						fail("doc %d: result id %d out of [0,%d)", doc, rr.DocID, maxID)
					}
					if seen[rr.DocID] {
						fail("doc %d: duplicate result id %d (torn merge)", doc, rr.DocID)
					}
					seen[rr.DocID] = true
					if i > 0 {
						prev := res.Results[i-1]
						if rr.Score > prev.Score || (rr.Score == prev.Score && rr.DocID < prev.DocID) {
							fail("doc %d: results out of (score desc, id asc) order at %d", doc, i)
						}
					}
				}
				if res.Partial != (len(res.Missing) > 0) {
					fail("doc %d: partial=%v but missing=%v", doc, res.Partial, res.Missing)
				}
				home := f.g.Route(doc)
				for i, m := range res.Missing {
					if m == home {
						fail("doc %d: home shard %d listed missing instead of erroring", doc, m)
					}
					if m < 0 || m >= f.g.NumShards() {
						fail("doc %d: missing shard %d out of range", doc, m)
					}
					if i > 0 && res.Missing[i-1] >= m {
						fail("doc %d: missing list not sorted/unique: %v", doc, res.Missing)
					}
				}
			}
		}(r)
	}
	wg.Wait()
	close(watchStop)
	<-watchDone
	if watchErr != nil {
		t.Fatal(watchErr)
	}
	if firstErr != nil {
		t.Fatal(firstErr)
	}

	// Quiesced: a fault-free coordinator over the grown corpus must be
	// exact again, including the documents added mid-traffic.
	c2, err := New(context.Background(), f.topo(0), Options{Transport: f.lt, Clock: clock})
	if err != nil {
		t.Fatalf("re-bootstrap: %v", err)
	}
	if c2.NumDocs() != len(docs)+len(extra) {
		t.Fatalf("post-stress coordinator sees %d docs, want %d", c2.NumDocs(), len(docs)+len(extra))
	}
	for doc := 0; doc < c2.NumDocs(); doc += 13 {
		want := f.g.Match(doc, k)
		res, err := c2.Related(context.Background(), doc, k, nil)
		if err != nil {
			t.Fatalf("post-stress doc %d: %v", doc, err)
		}
		if res.Partial {
			t.Fatalf("post-stress doc %d: partial over a healthy fleet", doc)
		}
		sameResults(t, fmt.Sprintf("post-stress doc %d", doc), want, res.Results)
	}
}
