package fleet

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/obs"
)

// Tests for the PR 9 observability layer: cross-process trace
// propagation (stitched coordinator traces, wire-version gating), the
// federated metrics scrape, and the per-shard health ledger. Fault
// scenarios reuse the faultinject harness — VirtualClock + Chaos — so
// every degraded trace below is deterministic.

// attrStr / attrInt read one attribute off a trace event.
func attrStr(ev obs.TraceEvent, key string) (string, bool) {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Str, true
		}
	}
	return "", false
}

func attrInt(ev obs.TraceEvent, key string) (int64, bool) {
	for _, a := range ev.Attrs {
		if a.Key == key {
			return a.Int, true
		}
	}
	return 0, false
}

// assertWellFormedTrace checks the structural invariants every stitched
// coordinator trace must satisfy, degraded or not:
//
//   - At is non-decreasing over the stored sequence (the coordinator
//     stamps spliced remote events at stitch time, so remote splices
//     cannot travel back in time relative to local events);
//   - every shard in legs has a fleet.leg marker carrying rtt_ns;
//   - every shard in missing has a fleet.leg.missing marker with a kind;
//   - remote.* events carry the shard and remote_at_ns annotations.
func assertWellFormedTrace(t *testing.T, events []obs.TraceEvent, legs, missing []int) {
	t.Helper()
	for i := 1; i < len(events); i++ {
		if events[i].At < events[i-1].At {
			t.Fatalf("trace not monotone: event %d (%s at %v) before event %d (%s at %v)",
				i, events[i].Name, events[i].At, i-1, events[i-1].Name, events[i-1].At)
		}
	}
	legSeen := make(map[int64]bool)
	missSeen := make(map[int64]bool)
	for _, ev := range events {
		switch {
		case ev.Name == "fleet.leg":
			s, ok := attrInt(ev, "shard")
			if !ok {
				t.Fatalf("fleet.leg without shard attr: %+v", ev)
			}
			if _, ok := attrInt(ev, "rtt_ns"); !ok {
				t.Fatalf("fleet.leg without rtt_ns: %+v", ev)
			}
			legSeen[s] = true
		case ev.Name == "fleet.leg.missing":
			s, ok := attrInt(ev, "shard")
			if !ok {
				t.Fatalf("fleet.leg.missing without shard attr: %+v", ev)
			}
			if kind, ok := attrStr(ev, "kind"); !ok || kind == "" {
				t.Fatalf("fleet.leg.missing without kind: %+v", ev)
			}
			missSeen[s] = true
		case strings.HasPrefix(ev.Name, "remote."):
			if _, ok := attrInt(ev, "shard"); !ok {
				t.Fatalf("remote event without shard attr: %+v", ev)
			}
			if _, ok := attrInt(ev, "remote_at_ns"); !ok {
				t.Fatalf("remote event without remote_at_ns: %+v", ev)
			}
		}
	}
	for _, s := range legs {
		if !legSeen[int64(s)] {
			t.Fatalf("no fleet.leg marker for shard %d (events: %d)", s, len(events))
		}
	}
	for _, s := range missing {
		if !missSeen[int64(s)] {
			t.Fatalf("no fleet.leg.missing marker for shard %d", s)
		}
	}
}

// remoteShards lists which shards contributed at least one spliced
// remote event.
func remoteShards(events []obs.TraceEvent) map[int64]bool {
	out := make(map[int64]bool)
	for _, ev := range events {
		if strings.HasPrefix(ev.Name, "remote.") {
			if s, ok := attrInt(ev, "shard"); ok {
				out[s] = true
			}
		}
	}
	return out
}

func TestTracePropagationHealthy(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	const doc, k = 3, 6
	full := f.g.Match(doc, k)

	sc := newScenario(t, f, 0, nil)

	// Tracing must not perturb the answer: traced and untraced runs both
	// match the in-process sharded oracle bit for bit.
	plain, err := sc.c.Related(context.Background(), doc, k, nil)
	if err != nil {
		t.Fatalf("untraced: %v", err)
	}
	sameResults(t, "untraced", full, plain.Results)

	tr := obs.NewTrace()
	res, err := sc.c.Related(context.Background(), doc, k, tr)
	if err != nil {
		t.Fatalf("traced: %v", err)
	}
	sameResults(t, "traced", full, res.Results)
	if res.Partial {
		t.Fatalf("healthy traced query came back partial: %+v", res)
	}

	events := tr.Events()
	var legs []int
	for s := 0; s < f.g.NumShards(); s++ {
		legs = append(legs, s)
	}
	assertWellFormedTrace(t, events, legs, nil)

	// Every shard ran server-side and shipped its child events back:
	// the home shard records host.recv + host.lists, siblings host.recv
	// + host.probed — all spliced under the remote. prefix.
	got := remoteShards(events)
	for _, s := range legs {
		if !got[int64(s)] {
			t.Fatalf("no remote events from shard %d; events: %+v", s, events)
		}
	}
}

func TestStitchedTraceShardDeathMidScatter(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 1)
	const doc, k = 3, 6
	home := f.g.Route(doc)
	sibs := sibsOf(f, home)
	dead := sibs[0]

	sc := newScenario(t, f, 1, nil)
	// The shard dies mid-scatter: both its endpoints black-hole every
	// attempt, hedge, and retry. The deterministic VirtualClock replays
	// the whole degraded timeline — attempt timeouts, retries, budget
	// exhaustion — with zero wall-clock sleeping.
	sc.ch.Script(epName(dead, 0), "", repeat(ChaosAction{Drop: true}, 8)...)
	sc.ch.Script(epName(dead, 1), "", repeat(ChaosAction{Drop: true}, 8)...)

	tr := obs.NewTrace()
	res, err := sc.c.Related(context.Background(), doc, k, tr)
	if err != nil {
		t.Fatalf("traced degraded query: %v", err)
	}
	if !res.Partial {
		t.Fatalf("expected partial result with shard %d dead", dead)
	}

	events := tr.Events()
	var alive []int
	for _, s := range sibs[1:] {
		alive = append(alive, s)
	}
	alive = append(alive, home)
	assertWellFormedTrace(t, events, alive, []int{dead})

	got := remoteShards(events)
	if got[int64(dead)] {
		t.Fatalf("dead shard %d contributed remote events", dead)
	}
	for _, s := range alive {
		if !got[int64(s)] {
			t.Fatalf("surviving shard %d shipped no remote events", s)
		}
	}
}

// wireDowngrader makes every shard report wire version 0 — an old peer
// that would reject unknown request fields.
type wireDowngrader struct{ Transport }

func (w *wireDowngrader) Meta(ctx context.Context, ep string, deliver func(*Meta, error)) {
	w.Transport.Meta(ctx, ep, func(m *Meta, err error) {
		if m != nil {
			mm := *m
			mm.Wire = 0
			m = &mm
		}
		deliver(m, err)
	})
}

func TestWireVersionGatingKeepsTraceFieldsOffOldPeers(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	const doc, k = 3, 6
	full := f.g.Match(doc, k)

	clock := NewVirtualClock(time.Unix(0, 0))
	ch := NewChaos(&wireDowngrader{f.lt}, clock)
	c := f.coordinator(t, f.topo(0), vopts(ch, clock))

	tr := obs.NewTrace()
	res, err := c.Related(context.Background(), doc, k, tr)
	if err != nil {
		t.Fatalf("traced query against old fleet: %v", err)
	}
	sameResults(t, "old-wire", full, res.Results)

	// The coordinator still records its own legs, but it must not have
	// asked the old peers for child traces: no remote events.
	events := tr.Events()
	if got := remoteShards(events); len(got) != 0 {
		t.Fatalf("old-wire fleet returned remote events from shards %v", got)
	}
	var legs []int
	for s := 0; s < f.g.NumShards(); s++ {
		legs = append(legs, s)
	}
	assertWellFormedTrace(t, events, legs, nil)
}

func TestScrapeFleetSumsAndMarksFailures(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 80, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 3, 42, 0)
	c := f.coordinator(t, f.topo(0), Options{Transport: f.lt})

	// Drive some traffic so counters are non-zero.
	for d := 0; d < 5; d++ {
		if _, err := c.Related(context.Background(), d, 4, nil); err != nil {
			t.Fatalf("related %d: %v", d, err)
		}
	}

	scrapes, merged := c.ScrapeFleet(context.Background())
	if len(scrapes) != 3 {
		t.Fatalf("scrapes: %d, want 3", len(scrapes))
	}
	for _, sc := range scrapes {
		if sc.Err != "" || sc.Snapshot == nil {
			t.Fatalf("healthy fleet scrape failed on shard %d: %q", sc.Shard, sc.Err)
		}
	}
	// Fleet-aggregated counters are exactly the sum of the per-shard
	// scrapes — the invariant the smoke harness re-checks over HTTP.
	for name, v := range merged.Counters {
		var sum int64
		for _, sc := range scrapes {
			sum += sc.Snapshot.Counters[name]
		}
		if v != sum {
			t.Fatalf("counter %s: merged %d != per-shard sum %d", name, v, sum)
		}
	}

	// Kill shard 1's only endpoint: its scrape must carry an explicit
	// error marker, and the merge must cover exactly the survivors.
	f.lt.RemoveHost(epName(1, 0))
	scrapes, merged = c.ScrapeFleet(context.Background())
	if scrapes[1].Err == "" || scrapes[1].Snapshot != nil {
		t.Fatalf("dead shard scrape not marked: %+v", scrapes[1])
	}
	for name, v := range merged.Counters {
		var sum int64
		for _, sc := range scrapes {
			if sc.Snapshot != nil {
				sum += sc.Snapshot.Counters[name]
			}
		}
		if v != sum {
			t.Fatalf("counter %s after death: merged %d != survivor sum %d", name, v, sum)
		}
	}
}

func TestHealthLedgerTracksFailures(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	const doc, k = 3, 6
	home := f.g.Route(doc)
	sibs := sibsOf(f, home)

	sc := newScenario(t, f, 0, nil)
	// Exactly one query's worth of failures (maxAttempts = retries + 2 =
	// 4), so the follow-up query finds a healthy shard again.
	sc.ch.Script(epName(sibs[0], 0), "probe",
		repeat(ChaosAction{Err: &RPCError{Status: 500, Kind: "injected", Msg: "down"}}, 4)...)

	if _, err := sc.c.Related(context.Background(), doc, k, nil); err != nil {
		t.Fatalf("related: %v", err)
	}
	h := sc.c.Health()
	if len(h) != 4 {
		t.Fatalf("health entries: %d, want 4", len(h))
	}
	if h[sibs[0]].ConsecutiveFailures < 1 {
		t.Fatalf("failed shard shows %d consecutive failures", h[sibs[0]].ConsecutiveFailures)
	}
	if h[sibs[0]].LastErrorKind != "injected" {
		t.Fatalf("last error kind %q, want injected", h[sibs[0]].LastErrorKind)
	}
	if h[home].ConsecutiveFailures != 0 {
		t.Fatalf("healthy home shard shows failures: %+v", h[home])
	}

	// The script is exhausted; a clean query resets the streak but keeps
	// the last error kind as history.
	if _, err := sc.c.Related(context.Background(), doc, k, nil); err != nil {
		t.Fatalf("recovery related: %v", err)
	}
	h = sc.c.Health()
	if h[sibs[0]].ConsecutiveFailures != 0 {
		t.Fatalf("streak not reset after recovery: %+v", h[sibs[0]])
	}
	if h[sibs[0]].LastErrorKind != "injected" {
		t.Fatalf("last error kind should persist as history, got %q", h[sibs[0]].LastErrorKind)
	}
}
