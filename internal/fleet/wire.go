package fleet

import (
	"hash/fnv"
	"strconv"

	"repro/internal/match"
	"repro/internal/obs"
)

// WireVersion is the fleet's internal RPC protocol version. Version 2
// added trace propagation: requests may carry a trace id + sampling
// flag, replies may carry the shard-side event list. All trace fields
// are omitempty, so an untraced version-2 request is byte-identical to
// a version-1 request; the coordinator only sets them against peers
// whose /internal/meta reports Wire >= 2 (version-1 servers decode
// strictly and would reject unknown fields).
const WireVersion = 2

// Wire types for the shard fleet's internal RPC surface. Everything
// crossing the network is plain JSON: Go's encoder emits the shortest
// decimal that round-trips each float64, so scores survive the hop
// bit-identically and the coordinator's merge stays byte-for-byte
// equivalent to the in-process scatter-gather (the property the
// equivalence matrix pins).
//
// A probe omits the reference segment's TF map deliberately: the map is
// exactly zip(Terms, QF) (index.TermFrequencies output keyed by the
// sorted term list), so shipping it would double the payload to say the
// same thing. Receivers that need the map — the explain path —
// reconstruct it with probeTF.

// WireProbe is one Algorithm 1 probe in transit: match.ClusterQuery
// minus the redundant TF map.
type WireProbe struct {
	Cluster   int       `json:"cluster"`
	Terms     []string  `json:"terms"`
	QF        []float64 `json:"qf"`
	IDF       []float64 `json:"idf"`
	AvgUnique float64   `json:"avg_unique"`
}

// WireResult is one scored candidate in a per-cluster list, carrying
// the answering shard's local document id.
type WireResult struct {
	Doc   int     `json:"d"`
	Score float64 `json:"s"`
}

// HomeRequest asks a document's owning shard to run the query's home
// leg: resolve the Algorithm 1 probes (frozen factors included) and
// scan its own partition with the reference document excluded.
type HomeRequest struct {
	Shard    int `json:"shard"`
	LocalDoc int `json:"local_doc"`
	K        int `json:"k"`
	// TraceID correlates the shard-side child trace with the
	// coordinator's trace; Trace asks the server to record one. Wire
	// version 2; both absent on untraced requests.
	TraceID string `json:"trace_id,omitempty"`
	Trace   bool   `json:"trace,omitempty"`
}

// HomeResponse carries the home leg's outcome. N is the full unsharded
// list depth the server scanned at (cfg.ListDepth(k)); the coordinator
// probes every sibling at the same depth and merges with a top-N heap,
// which is what keeps the networked ranking exactly equivalent to the
// single index. Docs is the answering server's current document count
// for this shard's partition-owner view — the coordinator grows its
// routing directory up to it before mapping local ids.
type HomeResponse struct {
	Probes []WireProbe    `json:"probes"`
	Lists  [][]WireResult `json:"lists"`
	N      int            `json:"n"`
	Epoch  uint64         `json:"epoch"`
	Docs   int            `json:"docs"`
	// Trace is the shard-side child trace's event list when the request
	// asked for one. Event offsets are relative to the server's request
	// receipt — never wall-clock — so the coordinator can stitch them
	// without trusting remote clocks.
	Trace []obs.TraceEvent `json:"trace,omitempty"`
}

// ProbeRequest asks a sibling shard to scan the frozen probes against
// its partition at the given depth, optionally pruning below the
// per-probe floors seeded from the home leg.
type ProbeRequest struct {
	Shard   int         `json:"shard"`
	Probes  []WireProbe `json:"probes"`
	Depth   int         `json:"depth"`
	Floors  []float64   `json:"floors,omitempty"`
	TraceID string      `json:"trace_id,omitempty"`
	Trace   bool        `json:"trace,omitempty"`
}

// ProbeResponse is a sibling leg's per-probe candidate lists.
type ProbeResponse struct {
	Lists [][]WireResult   `json:"lists"`
	Epoch uint64           `json:"epoch"`
	Docs  int              `json:"docs"`
	Trace []obs.TraceEvent `json:"trace,omitempty"`
}

// ExplainItem names one (result document, intention cluster) pair to
// decompose: the probe's term context and the Algorithm 2 divisor the
// coordinator's merge applied.
type ExplainItem struct {
	LocalDoc int       `json:"local_doc"`
	Cluster  int       `json:"cluster"`
	Terms    []string  `json:"terms"`
	QF       []float64 `json:"qf"`
	Norm     float64   `json:"norm"`
}

// ExplainRequest asks the shard owning a set of result documents for
// term-level Eq 7–9 contribution breakdowns.
type ExplainRequest struct {
	Shard   int           `json:"shard"`
	Items   []ExplainItem `json:"items"`
	TraceID string        `json:"trace_id,omitempty"`
	Trace   bool          `json:"trace,omitempty"`
}

// ExplainResponse carries one contribution list per requested item,
// aligned with ExplainRequest.Items.
type ExplainResponse struct {
	Items [][]match.TermContribution `json:"items"`
	Epoch uint64                     `json:"epoch"`
	Trace []obs.TraceEvent           `json:"trace,omitempty"`
}

// MetaParams is the slice of match.MRConfig the coordinator needs to
// reproduce the merge: TrimParams (threshold cut + normalization) and,
// informationally, the list-depth factor.
type MetaParams struct {
	NFactor        int     `json:"n_factor"`
	ScoreThreshold float64 `json:"score_threshold"`
	NormalizeLists bool    `json:"normalize_lists"`
}

// Meta is a shard server's self-description, served on /internal/meta.
// The coordinator bootstraps its topology view from any one server and
// cross-checks the rest: Seed + TotalShards reconstruct the routing
// directory (routing is a pure function of (seed, id, n)), Epoch
// identifies the snapshot lineage, Shards lists which partitions this
// server holds.
type Meta struct {
	Name        string     `json:"name"`
	Shards      []int      `json:"shards"`
	TotalShards int        `json:"total_shards"`
	Seed        uint64     `json:"seed"`
	Docs        int        `json:"docs"`
	Clusters    int        `json:"clusters"`
	Epoch       uint64     `json:"epoch"`
	Params      MetaParams `json:"params"`
	// Wire is the server's RPC protocol version (0 from version-1
	// servers, which predate the field). The coordinator only sends
	// trace-propagation fields to fleets whose every member reports a
	// version that understands them.
	Wire int `json:"wire,omitempty"`
}

// SnapshotEpoch derives the fleet epoch from the topology identity:
// collection name, shard count, routing seed, cluster count. Every
// server loaded from the same shard directory computes the same value;
// a server from a different build, seed, or topology computes a
// different one, and the coordinator rejects its replies instead of
// merging incomparable lists. Document count is deliberately excluded —
// the live in-process backend grows under Add without changing lineage.
func SnapshotEpoch(name string, totalShards int, seed uint64, clusters int) uint64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(totalShards)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.FormatUint(seed, 10)))
	h.Write([]byte{0})
	h.Write([]byte(strconv.Itoa(clusters)))
	return h.Sum64()
}

// toWireProbes strips the redundant TF maps from resolved probes.
func toWireProbes(probes []match.ClusterQuery) []WireProbe {
	out := make([]WireProbe, len(probes))
	for i, p := range probes {
		out[i] = WireProbe{
			Cluster: p.Cluster, Terms: p.Terms, QF: p.QF,
			IDF: p.IDF, AvgUnique: p.AvgUnique,
		}
	}
	return out
}

// probeTF reconstructs the reference segment's term-frequency map from
// the aligned (Terms, QF) columns — the inverse of the TF omission in
// WireProbe.
func probeTF(terms []string, qf []float64) map[string]float64 {
	tf := make(map[string]float64, len(terms))
	for i, t := range terms {
		tf[t] = qf[i]
	}
	return tf
}

// toClusterQueries rebuilds full match probes (TF included) for the
// matcher-side scan and explain surfaces.
func toClusterQueries(probes []WireProbe) []match.ClusterQuery {
	out := make([]match.ClusterQuery, len(probes))
	for i, p := range probes {
		out[i] = match.ClusterQuery{
			Cluster: p.Cluster, TF: probeTF(p.Terms, p.QF),
			Terms: p.Terms, QF: p.QF, IDF: p.IDF, AvgUnique: p.AvgUnique,
		}
	}
	return out
}

// toWireLists converts matcher result lists to wire form.
func toWireLists(lists [][]match.Result) [][]WireResult {
	out := make([][]WireResult, len(lists))
	for i, l := range lists {
		w := make([]WireResult, len(l))
		for j, r := range l {
			w[j] = WireResult{Doc: r.DocID, Score: r.Score}
		}
		out[i] = w
	}
	return out
}
