package fleet

import (
	"context"
	"sync"
	"time"

	"repro/internal/obs"
)

// Chaos wraps a Transport with scripted faults: per-(endpoint, call
// kind) schedules of delays, errors, and drops, consumed one action
// per call in arrival order. Delays are rescheduled through the Clock,
// so under a VirtualClock a whole fault schedule — slow shards, flappy
// errors, black-holed packets, late duplicate replies — plays out
// deterministically with zero wall-clock sleeping: the scripted
// deliveries fire inside the coordinator's own Wait, in timestamp
// order, on the coordinator's goroutine.
//
// Script keys: Script(endpoint, kind, ...) scopes a schedule to one
// call kind ("home", "probe", "explain", "meta"); kind "" matches any
// call to the endpoint. Exact keys win over wildcard keys. A call with
// no scripted action left falls through to Fallback (if set), else
// passes through untouched.

// ChaosAction is one scripted fault. The zero value passes the call
// through unchanged.
type ChaosAction struct {
	// Delay postpones the whole call (request + reply) by this much —
	// the slow-shard fault. The inner transport is not even invoked
	// until the delay elapses, so canceling the attempt in the meantime
	// suppresses the reply (the request never "reached the server").
	Delay time.Duration
	// ReplyDelay lets the request reach the server immediately but
	// postpones the reply — the slow-trickle fault. The work happens up
	// front, so a reply already in flight arrives even after the
	// coordinator gave up on the attempt: the late-duplicate case the
	// dedup machinery exists for.
	ReplyDelay time.Duration
	// Err, when non-nil, is delivered instead of invoking the inner
	// transport (after Delay/ReplyDelay, if set) — the failing-shard
	// fault.
	Err error
	// Drop black-holes the call: the inner transport is never invoked
	// and deliver is never called. Only the coordinator's attempt
	// timeout recovers, exactly like a lost packet.
	Drop bool
}

// Chaos is the fault-injecting Transport wrapper.
type Chaos struct {
	inner Transport
	clock Clock

	mu     sync.Mutex
	script map[string][]ChaosAction
	used   map[string]int

	// Fallback, when set, supplies the action for calls with no
	// scripted entry — the stress test plugs a seeded generator in
	// here to degrade shards pseudo-randomly but reproducibly.
	Fallback func(endpoint, kind string, call int) ChaosAction
	calls    map[string]int
}

// NewChaos wraps inner, scheduling delayed actions on clock.
func NewChaos(inner Transport, clock Clock) *Chaos {
	return &Chaos{
		inner:  inner,
		clock:  clock,
		script: make(map[string][]ChaosAction),
		used:   make(map[string]int),
		calls:  make(map[string]int),
	}
}

func scriptKey(endpoint, kind string) string { return endpoint + "\x00" + kind }

// Script appends actions to the schedule for (endpoint, kind); kind ""
// applies to every call kind at the endpoint.
func (c *Chaos) Script(endpoint, kind string, actions ...ChaosAction) {
	c.mu.Lock()
	k := scriptKey(endpoint, kind)
	c.script[k] = append(c.script[k], actions...)
	c.mu.Unlock()
}

// next consumes the action for one call.
func (c *Chaos) next(endpoint, kind string) ChaosAction {
	c.mu.Lock()
	defer c.mu.Unlock()
	for _, k := range [2]string{scriptKey(endpoint, kind), scriptKey(endpoint, "")} {
		if u, s := c.used[k], c.script[k]; u < len(s) {
			c.used[k] = u + 1
			return s[u]
		}
	}
	if c.Fallback != nil {
		n := c.calls[endpoint]
		c.calls[endpoint] = n + 1
		return c.Fallback(endpoint, kind, n)
	}
	return ChaosAction{}
}

// lateDeliver wraps a deliver callback so the reply rides the clock.
func lateDeliver[T any](clock Clock, d time.Duration, deliver func(T, error)) func(T, error) {
	if d <= 0 {
		return deliver
	}
	return func(v T, err error) {
		clock.AfterFunc(d, func() { deliver(v, err) })
	}
}

// schedule runs step now or after the action's request delay.
func (c *Chaos) schedule(act ChaosAction, step func()) {
	if act.Delay > 0 {
		c.clock.AfterFunc(act.Delay, step)
		return
	}
	step()
}

// Home implements Transport.
func (c *Chaos) Home(ctx context.Context, endpoint string, req *HomeRequest, deliver func(*HomeResponse, error)) {
	act := c.next(endpoint, "home")
	if act.Drop {
		return
	}
	del := lateDeliver(c.clock, act.ReplyDelay, deliver)
	step := func() { c.inner.Home(ctx, endpoint, req, del) }
	if act.Err != nil {
		err := act.Err
		step = func() { del(nil, err) }
	}
	c.schedule(act, step)
}

// Probe implements Transport.
func (c *Chaos) Probe(ctx context.Context, endpoint string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	act := c.next(endpoint, "probe")
	if act.Drop {
		return
	}
	del := lateDeliver(c.clock, act.ReplyDelay, deliver)
	step := func() { c.inner.Probe(ctx, endpoint, req, del) }
	if act.Err != nil {
		err := act.Err
		step = func() { del(nil, err) }
	}
	c.schedule(act, step)
}

// Explain implements Transport.
func (c *Chaos) Explain(ctx context.Context, endpoint string, req *ExplainRequest, deliver func(*ExplainResponse, error)) {
	act := c.next(endpoint, "explain")
	if act.Drop {
		return
	}
	del := lateDeliver(c.clock, act.ReplyDelay, deliver)
	step := func() { c.inner.Explain(ctx, endpoint, req, del) }
	if act.Err != nil {
		err := act.Err
		step = func() { del(nil, err) }
	}
	c.schedule(act, step)
}

// Meta implements Transport.
func (c *Chaos) Meta(ctx context.Context, endpoint string, deliver func(*Meta, error)) {
	act := c.next(endpoint, "meta")
	if act.Drop {
		return
	}
	del := lateDeliver(c.clock, act.ReplyDelay, deliver)
	step := func() { c.inner.Meta(ctx, endpoint, del) }
	if act.Err != nil {
		err := act.Err
		step = func() { del(nil, err) }
	}
	c.schedule(act, step)
}

// Metrics implements Transport.
func (c *Chaos) Metrics(ctx context.Context, endpoint string, deliver func(*obs.Snapshot, error)) {
	act := c.next(endpoint, "metrics")
	if act.Drop {
		return
	}
	del := lateDeliver(c.clock, act.ReplyDelay, deliver)
	step := func() { c.inner.Metrics(ctx, endpoint, del) }
	if act.Err != nil {
		err := act.Err
		step = func() { del(nil, err) }
	}
	c.schedule(act, step)
}
