package fleet

import (
	"container/heap"
	"context"
	"sync"
	"time"
)

// Time in the coordinator flows through one narrow interface so the
// fault-injection suite can run every timeout, backoff, and hedge
// decision on a virtual clock — scripted delays, zero wall-clock
// sleeps, fully deterministic outcomes — while production uses the real
// clock unchanged.
//
// The coordinator is written as a per-query event loop with a single
// waiter: all of its timing needs reduce to "block until something is
// delivered, a scheduled instant arrives, or the request is canceled",
// which is exactly Wait. Fault injectors schedule their deliveries with
// AfterFunc on the same clock; under VirtualClock those callbacks run
// synchronously inside Wait, in strict timestamp order, from the
// waiting goroutine itself — so a scripted schedule produces one and
// only one interleaving.

// WaitOutcome says why Wait returned.
type WaitOutcome int

const (
	// WaitNotified: the notify channel fired — a delivery arrived.
	WaitNotified WaitOutcome = iota
	// WaitDeadline: the requested instant was reached first.
	WaitDeadline
	// WaitCanceled: the context was done first.
	WaitCanceled
)

// Clock abstracts the coordinator's relationship with time.
type Clock interface {
	// Now returns the current instant.
	Now() time.Time
	// Wait blocks until notify fires (WaitNotified), until arrives
	// (WaitDeadline), or ctx is done (WaitCanceled). A virtual clock
	// advances its own time to at most until, running due AfterFunc
	// callbacks along the way.
	Wait(ctx context.Context, notify <-chan struct{}, until time.Time) WaitOutcome
	// AfterFunc schedules fn to run once d from now. Fault injectors use
	// it to script deliveries; the coordinator itself never does (its
	// scheduled work rides on Wait deadlines).
	AfterFunc(d time.Duration, fn func())
}

// RealClock is the production Clock: wall time, real timers.
type RealClock struct{}

// Now implements Clock.
func (RealClock) Now() time.Time { return time.Now() }

// Wait implements Clock with a plain select.
func (RealClock) Wait(ctx context.Context, notify <-chan struct{}, until time.Time) WaitOutcome {
	d := time.Until(until)
	if d <= 0 {
		// The instant has passed; report a delivery if one is already
		// pending, else the deadline — never block.
		select {
		case <-notify:
			return WaitNotified
		default:
			return WaitDeadline
		}
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-notify:
		return WaitNotified
	case <-t.C:
		return WaitDeadline
	case <-ctx.Done():
		return WaitCanceled
	}
}

// AfterFunc implements Clock.
func (RealClock) AfterFunc(d time.Duration, fn func()) { time.AfterFunc(d, fn) }

// VirtualClock is a deterministic Clock for tests: time advances only
// inside Wait, events fire in (timestamp, registration) order, and
// event callbacks run synchronously on the waiting goroutine — so a
// scripted fault schedule has exactly one possible interleaving. The
// zero value is not usable; call NewVirtualClock.
type VirtualClock struct {
	mu     sync.Mutex
	now    time.Time
	seq    int64
	events eventHeap
}

// NewVirtualClock returns a virtual clock starting at start.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{now: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// AfterFunc implements Clock: fn is queued to run at now+d during a
// future Wait. Negative d means "immediately" (it still queues, so the
// deliver-before-return ordering of synchronous transports is
// preserved).
func (c *VirtualClock) AfterFunc(d time.Duration, fn func()) {
	if d < 0 {
		d = 0
	}
	c.mu.Lock()
	c.seq++
	heap.Push(&c.events, event{at: c.now.Add(d), seq: c.seq, fn: fn})
	c.mu.Unlock()
}

// Wait implements Clock. Due events (at ≤ until) fire one at a time in
// order, each callback running before the next pops — a callback that
// causes a delivery makes the very next iteration observe notify, so
// deliveries can never be overtaken by a later timestamp. With no due
// event and nothing delivered, time jumps straight to until.
func (c *VirtualClock) Wait(ctx context.Context, notify <-chan struct{}, until time.Time) WaitOutcome {
	for {
		select {
		case <-notify:
			return WaitNotified
		default:
		}
		if ctx.Err() != nil {
			return WaitCanceled
		}
		c.mu.Lock()
		if len(c.events) > 0 && !c.events[0].at.After(until) {
			ev := heap.Pop(&c.events).(event)
			if ev.at.After(c.now) {
				c.now = ev.at
			}
			c.mu.Unlock()
			ev.fn()
			continue
		}
		if c.now.Before(until) {
			c.now = until
		}
		c.mu.Unlock()
		return WaitDeadline
	}
}

// event is one scheduled callback.
type event struct {
	at  time.Time
	seq int64
	fn  func()
}

// eventHeap orders events by (time, registration sequence).
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if !h[i].at.Equal(h[j].at) {
		return h[i].at.Before(h[j].at)
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	*h = old[:n-1]
	return ev
}
