package fleet

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// LocalTransport is the in-process Transport: endpoints are plain
// names mapped to Hosts, and deliveries happen synchronously before
// the call returns. It is the substrate of the fault-injection suite —
// wrap it in a Chaos with a VirtualClock and an entire degraded fleet
// runs deterministically on one goroutine — and of the -race stress
// test, where hosts come and go mid-flight.
type LocalTransport struct {
	mu    sync.RWMutex
	hosts map[string]*Host
}

// NewLocalTransport returns an empty in-process fleet.
func NewLocalTransport() *LocalTransport {
	return &LocalTransport{hosts: make(map[string]*Host)}
}

// AddHost serves h at endpoint.
func (t *LocalTransport) AddHost(endpoint string, h *Host) {
	t.mu.Lock()
	t.hosts[endpoint] = h
	t.mu.Unlock()
}

// RemoveHost kills the server at endpoint: subsequent calls fail like
// a refused connection.
func (t *LocalTransport) RemoveHost(endpoint string) {
	t.mu.Lock()
	delete(t.hosts, endpoint)
	t.mu.Unlock()
}

func (t *LocalTransport) host(endpoint string) (*Host, error) {
	t.mu.RLock()
	h := t.hosts[endpoint]
	t.mu.RUnlock()
	if h == nil {
		return nil, &RPCError{Kind: "dial", Msg: fmt.Sprintf("connect %s: connection refused", endpoint)}
	}
	return h, nil
}

// Home implements Transport.
func (t *LocalTransport) Home(ctx context.Context, endpoint string, req *HomeRequest, deliver func(*HomeResponse, error)) {
	if ctx.Err() != nil {
		return
	}
	h, err := t.host(endpoint)
	if err != nil {
		deliver(nil, err)
		return
	}
	deliver(h.HandleHome(req))
}

// Probe implements Transport.
func (t *LocalTransport) Probe(ctx context.Context, endpoint string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	if ctx.Err() != nil {
		return
	}
	h, err := t.host(endpoint)
	if err != nil {
		deliver(nil, err)
		return
	}
	deliver(h.HandleProbe(req))
}

// Explain implements Transport.
func (t *LocalTransport) Explain(ctx context.Context, endpoint string, req *ExplainRequest, deliver func(*ExplainResponse, error)) {
	if ctx.Err() != nil {
		return
	}
	h, err := t.host(endpoint)
	if err != nil {
		deliver(nil, err)
		return
	}
	deliver(h.HandleExplain(req))
}

// Meta implements Transport.
func (t *LocalTransport) Meta(ctx context.Context, endpoint string, deliver func(*Meta, error)) {
	if ctx.Err() != nil {
		return
	}
	h, err := t.host(endpoint)
	if err != nil {
		deliver(nil, err)
		return
	}
	deliver(h.Meta(), nil)
}

// Metrics implements Transport. In-process hosts share one registry, so
// each live endpoint reports the same process-wide snapshot — the
// federation caveat Host.MetricsSnapshot documents.
func (t *LocalTransport) Metrics(ctx context.Context, endpoint string, deliver func(*obs.Snapshot, error)) {
	if ctx.Err() != nil {
		return
	}
	h, err := t.host(endpoint)
	if err != nil {
		deliver(nil, err)
		return
	}
	s := h.MetricsSnapshot()
	deliver(&s, nil)
}
