package fleet

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/obs"
)

// The fault-injection harness: every scenario runs a real Coordinator
// over the in-process fleet with a scripted Chaos transport and a
// VirtualClock, so the entire degraded execution — delays, retries,
// backoffs, hedges, attempt timeouts, late duplicates — is
// deterministic and sleeps zero wall-clock time. Each scenario pins one
// fault class to its contract:
//
//   - healthy fleet        → byte-identical to shard.Group (never partial)
//   - transient error      → retried within budget, full correct answer
//   - sibling black-holed  → well-formed partial, equal to the oracle
//     merge over the surviving shards (refPartial)
//   - slow trickle         → late duplicate deduped, full correct answer
//   - slow primary         → hedge to replica wins, full correct answer
//   - hedged but fast      → primary still wins, no spurious hedge win
//   - home shard dead      → typed 503 fleet_unavailable, never a wrong answer
//   - every sibling dead   → partial = home-only merge
//   - epoch mismatch       → replies rejected, shard reported missing
//   - cancel mid-scatter   → context error, all legs released
//   - budget exhausted     → partial (siblings) or typed 503 (home)
//
// The invariant across all of them: a response is either complete and
// bit-identical to the unsharded index, or explicitly partial and
// bit-identical to the merge without the missing shards, or a typed
// error. Never a hang, never wrong-but-complete.

// delta snapshots a counter so scenarios can assert on increments
// regardless of what earlier tests recorded.
func delta(c *obs.Counter) func() int64 {
	start := c.Value()
	return func() int64 { return c.Value() - start }
}

// repeat builds an n-long schedule of the same action.
func repeat(a ChaosAction, n int) []ChaosAction {
	out := make([]ChaosAction, n)
	for i := range out {
		out[i] = a
	}
	return out
}

// scenario wires one scripted run: fresh clock, fresh chaos over the
// shared backend, fresh coordinator (so latency history and hedge
// state start clean).
type scenario struct {
	f     *testFleet
	clock *VirtualClock
	ch    *Chaos
	c     *Coordinator
}

func newScenario(t testing.TB, f *testFleet, replicas int, tune func(*Options)) *scenario {
	t.Helper()
	clock := NewVirtualClock(time.Unix(0, 0))
	ch := NewChaos(f.lt, clock)
	opts := vopts(ch, clock)
	if tune != nil {
		tune(&opts)
	}
	return &scenario{f: f, clock: clock, ch: ch, c: f.coordinator(t, f.topo(replicas), opts)}
}

// sibsOf lists every shard except home, ascending.
func sibsOf(f *testFleet, home int) []int {
	var sibs []int
	for s := 0; s < f.g.NumShards(); s++ {
		if s != home {
			sibs = append(sibs, s)
		}
	}
	return sibs
}

func TestFaultInjection(t *testing.T) {
	obs.Enable()
	t.Cleanup(obs.Disable)
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 1)
	const doc, k = 3, 6
	home := f.g.Route(doc)
	sibs := sibsOf(f, home)
	full := f.g.Match(doc, k)

	// assertFull: the response is complete and bit-identical to the
	// in-process sharded answer.
	assertFull := func(t *testing.T, res *FleetResult, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if res.Partial || len(res.Missing) != 0 {
			t.Fatalf("expected complete answer, got partial=%v missing=%v", res.Partial, res.Missing)
		}
		sameResults(t, "full", full, res.Results)
	}

	// assertPartial: the response is flagged, names exactly the expected
	// shards, and equals the oracle merge over the survivors.
	assertPartial := func(t *testing.T, res *FleetResult, err error, missing ...int) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if !res.Partial {
			t.Fatalf("expected partial, got complete: %+v", res)
		}
		got := append([]int(nil), res.Missing...)
		sort.Ints(got)
		want := append([]int(nil), missing...)
		sort.Ints(want)
		if fmt.Sprint(got) != fmt.Sprint(want) {
			t.Fatalf("missing shards %v, want %v", got, want)
		}
		miss := make(map[int]bool, len(want))
		for _, s := range want {
			miss[s] = true
		}
		sameResults(t, "partial-oracle", refPartial(t, f, doc, k, miss), res.Results)
	}

	t.Run("healthy", func(t *testing.T) {
		sc := newScenario(t, f, 1, nil)
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertFull(t, res, err)
		if sc.clock.Now() != time.Unix(0, 0) {
			t.Fatalf("healthy query consumed virtual time: %v", sc.clock.Now())
		}
	})

	t.Run("transient-error-retried", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		retries := delta(ctrRetries)
		sc.ch.Script(epName(sibs[0], 0), "probe", ChaosAction{Err: &RPCError{Status: 500, Kind: "injected", Msg: "flap"}})
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertFull(t, res, err)
		if retries() < 1 {
			t.Fatalf("expected at least one retry, got %d", retries())
		}
	})

	t.Run("sibling-black-holed-partial", func(t *testing.T) {
		sc := newScenario(t, f, 1, nil)
		partials := delta(ctrPartial)
		timeouts := delta(ctrAttemptTimeouts)
		// Both endpoints of the shard swallow everything: attempts, the
		// hedge, and every retry vanish. Only timeouts recover.
		sc.ch.Script(epName(sibs[0], 0), "", repeat(ChaosAction{Drop: true}, 8)...)
		sc.ch.Script(epName(sibs[0], 1), "", repeat(ChaosAction{Drop: true}, 8)...)
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertPartial(t, res, err, sibs[0])
		if partials() < 1 || timeouts() < 2 {
			t.Fatalf("partial=%d attempt_timeouts=%d, want >=1 and >=2", partials(), timeouts())
		}
	})

	t.Run("slow-trickle-late-duplicate", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		dups := delta(ctrDupReplies)
		// sibs[0]'s first reply trickles in at t=150ms — after its attempt
		// timed out at t=100ms and the retry already answered. sibs[1]
		// stays pending past t=150ms so the loop is alive to observe the
		// stale duplicate.
		sc.ch.Script(epName(sibs[0], 0), "probe", ChaosAction{ReplyDelay: 150 * time.Millisecond})
		sc.ch.Script(epName(sibs[1], 0), "probe",
			ChaosAction{Drop: true}, ChaosAction{Delay: 120 * time.Millisecond})
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertFull(t, res, err)
		if dups() < 1 {
			t.Fatalf("expected the stale reply to be counted as duplicate, got %d", dups())
		}
	})

	t.Run("hedge-replica-wins", func(t *testing.T) {
		sc := newScenario(t, f, 1, nil)
		hedges, wins := delta(ctrHedges), delta(ctrHedgeWins)
		// Primary is near-dead; the hedge fires at 50ms and the replica
		// answers instantly.
		sc.ch.Script(epName(sibs[0], 0), "probe", ChaosAction{Delay: 10 * time.Second})
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertFull(t, res, err)
		if hedges() < 1 || wins() < 1 {
			t.Fatalf("hedges=%d hedge_wins=%d, want both >=1", hedges(), wins())
		}
	})

	t.Run("hedge-fired-primary-wins", func(t *testing.T) {
		sc := newScenario(t, f, 1, nil)
		hedges, wins := delta(ctrHedges), delta(ctrHedgeWins)
		// Primary answers at 60ms — after the 50ms hedge fires, before the
		// replica's 90ms reply. The primary's answer must win and the
		// hedge must not count as a win.
		sc.ch.Script(epName(sibs[0], 0), "probe", ChaosAction{ReplyDelay: 60 * time.Millisecond})
		sc.ch.Script(epName(sibs[0], 1), "probe", ChaosAction{ReplyDelay: 40 * time.Millisecond})
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertFull(t, res, err)
		if hedges() < 1 {
			t.Fatalf("expected a hedge, got %d", hedges())
		}
		if wins() != 0 {
			t.Fatalf("primary won but hedge_wins moved by %d", wins())
		}
	})

	t.Run("home-shard-dead-typed-503", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		sc.ch.Script(epName(home, 0), "", repeat(ChaosAction{Err: &RPCError{Status: 503, Kind: "injected", Msg: "down"}}, 8)...)
		_, err := sc.c.Related(context.Background(), doc, k, nil)
		var rpc *RPCError
		if !errors.As(err, &rpc) || rpc.Status != http.StatusServiceUnavailable || rpc.Kind != "fleet_unavailable" {
			t.Fatalf("want typed 503 fleet_unavailable, got %v", err)
		}
	})

	t.Run("all-siblings-down", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		for _, s := range sibs {
			sc.ch.Script(epName(s, 0), "", repeat(ChaosAction{Drop: true}, 8)...)
		}
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertPartial(t, res, err, sibs...)
	})

	t.Run("epoch-mismatch-rejected", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		mism := delta(ctrEpochMismatch)
		// After bootstrap, sibs[0]'s endpoint is redeployed with a host
		// from a different snapshot lineage (different name → different
		// epoch). Its replies must never be merged.
		imposter := NewHost("other-build", f.g.NumShards(), f.g.Seed(), f.g.NumClusters(),
			map[int]*match.MR{sibs[0]: f.g.ShardMR(sibs[0])}, f.g.NumDocs)
		f.lt.AddHost(epName(sibs[0], 0), imposter)
		t.Cleanup(func() { f.lt.AddHost(epName(sibs[0], 0), f.hosts[sibs[0]]) })
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertPartial(t, res, err, sibs[0])
		if mism() < 1 {
			t.Fatalf("expected epoch mismatches to be counted, got %d", mism())
		}
	})

	t.Run("cancel-mid-scatter", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		for _, s := range sibs {
			sc.ch.Script(epName(s, 0), "probe", repeat(ChaosAction{Delay: time.Hour}, 8)...)
		}
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		sc.clock.AfterFunc(30*time.Millisecond, cancel)
		_, err := sc.c.Related(ctx, doc, k, nil)
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("want context.Canceled, got %v", err)
		}
	})

	t.Run("budget-exhausted-siblings-missing", func(t *testing.T) {
		// Attempt timeout larger than the query budget: nothing recovers a
		// silent sibling except the whole-query deadline.
		sc := newScenario(t, f, 0, func(o *Options) {
			o.Timeout = 200 * time.Millisecond
			o.AttemptTimeout = 10 * time.Second
		})
		for _, s := range sibs {
			sc.ch.Script(epName(s, 0), "probe", ChaosAction{Delay: time.Hour})
		}
		res, err := sc.c.Related(context.Background(), doc, k, nil)
		assertPartial(t, res, err, sibs...)
		if got := sc.clock.Now().Sub(time.Unix(0, 0)); got != 200*time.Millisecond {
			t.Fatalf("query should end exactly at the 200ms budget, took %v", got)
		}
	})

	t.Run("budget-exhausted-home-missing", func(t *testing.T) {
		sc := newScenario(t, f, 0, func(o *Options) {
			o.Timeout = 200 * time.Millisecond
			o.AttemptTimeout = 10 * time.Second
		})
		sc.ch.Script(epName(home, 0), "home", ChaosAction{Delay: time.Hour})
		_, err := sc.c.Related(context.Background(), doc, k, nil)
		var rpc *RPCError
		if !errors.As(err, &rpc) || rpc.Status != http.StatusServiceUnavailable || rpc.Kind != "fleet_unavailable" {
			t.Fatalf("want typed 503 fleet_unavailable, got %v", err)
		}
	})

	t.Run("unknown-doc", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		if _, err := sc.c.Related(context.Background(), f.g.NumDocs()+50, k, nil); !errors.Is(err, ErrUnknownDoc) {
			t.Fatalf("beyond-corpus doc: want ErrUnknownDoc, got %v", err)
		}
		if _, err := sc.c.Related(context.Background(), -1, k, nil); !errors.Is(err, ErrUnknownDoc) {
			t.Fatalf("negative doc: want ErrUnknownDoc, got %v", err)
		}
	})

	t.Run("explain-shard-degrades-to-partial", func(t *testing.T) {
		sc := newScenario(t, f, 0, nil)
		// Related legs succeed; the explain batch on sibs[0] is dropped.
		sc.ch.Script(epName(sibs[0], 0), "explain", repeat(ChaosAction{Drop: true}, 8)...)
		res, exps, err := sc.c.RelatedExplained(context.Background(), doc, k, nil)
		if err != nil {
			t.Fatalf("explain: %v", err)
		}
		sameResults(t, "explain-results", full, res.Results)
		owned := false
		for _, r := range res.Results {
			if f.g.Route(r.DocID) == sibs[0] {
				owned = true
			}
		}
		if !owned {
			t.Skipf("no result doc routed to shard %d; scenario vacuous for this corpus", sibs[0])
		}
		if !res.Partial {
			t.Fatalf("explain shard down: expected partial flag")
		}
		for i, e := range exps {
			s := f.g.Route(res.Results[i].DocID)
			for _, cc := range e.Clusters {
				if s == sibs[0] && cc.Terms != nil {
					t.Fatalf("doc %d on dead shard has term breakdown", res.Results[i].DocID)
				}
				if s != sibs[0] && len(cc.Terms) == 0 {
					t.Fatalf("doc %d on healthy shard %d missing term breakdown", res.Results[i].DocID, s)
				}
			}
		}
	})
}

// TestFaultScheduleDeterminism runs one rich scripted schedule twice —
// fresh clock, chaos, and coordinator each time — and requires the two
// executions to produce byte-identical outputs. This is the property
// that makes the whole suite trustworthy: a scripted fault schedule has
// exactly one possible interleaving.
func TestFaultScheduleDeterminism(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 120, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 1)

	run := func() []byte {
		sc := newScenario(t, f, 1, nil)
		// A bit of everything: flapping errors, drops, slow replies, a
		// near-dead primary forcing a hedge.
		sc.ch.Script("s0", "probe", ChaosAction{Err: &RPCError{Status: 500, Kind: "injected", Msg: "flap"}})
		sc.ch.Script("s1", "", repeat(ChaosAction{Drop: true}, 8)...)
		sc.ch.Script("s1-r1", "", repeat(ChaosAction{Drop: true}, 8)...)
		sc.ch.Script("s2", "probe",
			ChaosAction{ReplyDelay: 150 * time.Millisecond},
			ChaosAction{Delay: 60 * time.Millisecond})
		sc.ch.Script("s3", "probe", ChaosAction{Delay: 10 * time.Second})
		var out bytes.Buffer
		for _, doc := range []int{3, 17, 42} {
			res, err := sc.c.Related(context.Background(), doc, 6, nil)
			if err != nil {
				fmt.Fprintf(&out, "doc %d err %v\n", doc, err)
				continue
			}
			fmt.Fprintf(&out, "doc %d partial %v missing %v at %v %s\n",
				doc, res.Partial, res.Missing, sc.clock.Now().Sub(time.Unix(0, 0)), mustJSON(t, res.Results))
		}
		return out.Bytes()
	}

	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("same schedule, different executions:\nrun A:\n%srun B:\n%s", a, b)
	}
}
