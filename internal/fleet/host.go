package fleet

import (
	"fmt"
	"net/http"

	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Host is the server half of the fleet: one process holding one or
// more shard partitions of a collection and answering the internal
// probe surface (home leg, sibling scan, explain, meta). It is
// transport-agnostic — internal/serve wraps it in HTTP handlers, and
// LocalTransport calls it directly so the fault-injection suite runs a
// whole fleet in one process with zero sockets.
type Host struct {
	name     string
	total    int
	seed     uint64
	clusters int
	epoch    uint64
	cfg      match.MRConfig
	shards   map[int]*match.MR
	docs     func() int

	ctrHome    map[int]*obs.Counter // fleet.host.NN.home: home legs answered
	ctrProbe   map[int]*obs.Counter // fleet.host.NN.probe: sibling scans answered
	ctrExplain map[int]*obs.Counter // fleet.host.NN.explain: explain batches answered
	spanProbe  map[int]*obs.Span    // fleet.host.NN.scan: scan latency (home + sibling)

	// tracer, when set, also publishes remote-requested child traces
	// into the host process's own /debug/traces ring (the shard server
	// wires its per-server tracer in). Without one the trace still runs —
	// its events ship back in the reply — it just isn't retained locally.
	tracer *obs.Tracer
}

// SetTracer attaches the ring remote-requested traces publish into.
func (h *Host) SetTracer(tr *obs.Tracer) { h.tracer = tr }

// openTrace starts the shard-side child trace for a remote request that
// set the trace flag, or returns nil (the free path) when it didn't.
// The trace's clock starts at request receipt, so every event offset is
// remote-relative; the upstream trace id is recorded as an attribute
// for cross-process correlation.
func (h *Host) openTrace(want bool, traceID, kind string, shard int) *obs.Trace {
	if !want {
		return nil
	}
	var t *obs.Trace
	if h.tracer != nil {
		t = h.tracer.StartForced()
	} else {
		t = obs.NewTrace()
	}
	t.Event("host.recv", obs.A("kind", kind), obs.A("remote_trace", traceID), obs.N("shard", int64(shard)))
	return t
}

// closeTrace finishes a child trace and returns its events for the
// reply. Nil-safe (untraced requests pass the nil straight through).
func (h *Host) closeTrace(t *obs.Trace) []obs.TraceEvent {
	if t == nil {
		return nil
	}
	events := t.Events()
	if h.tracer != nil {
		h.tracer.Finish(t)
	}
	return events
}

// NewHost assembles a host over already-loaded shard matchers. docs
// reports the collection's global document count — static for snapshot
// fleets, live for an in-process backend that keeps adding. Every
// matcher must already be attached to pools covering the whole
// collection; that is what makes its scores collection-global.
func NewHost(name string, totalShards int, seed uint64, clusters int, shards map[int]*match.MR, docs func() int) *Host {
	var cfg match.MRConfig
	for _, mr := range shards {
		cfg = mr.Config()
		break
	}
	h := &Host{
		name:     name,
		total:    totalShards,
		seed:     seed,
		clusters: clusters,
		epoch:    SnapshotEpoch(name, totalShards, seed, clusters),
		cfg:      cfg,
		shards:   shards,
		docs:     docs,

		ctrHome:    make(map[int]*obs.Counter, len(shards)),
		ctrProbe:   make(map[int]*obs.Counter, len(shards)),
		ctrExplain: make(map[int]*obs.Counter, len(shards)),
		spanProbe:  make(map[int]*obs.Span, len(shards)),
	}
	for s := range shards {
		lbl := fmt.Sprintf("fleet.host.%02d", s)
		h.ctrHome[s] = obs.GetOrNewCounter(lbl + ".home")
		h.ctrProbe[s] = obs.GetOrNewCounter(lbl + ".probe")
		h.ctrExplain[s] = obs.GetOrNewCounter(lbl + ".explain")
		h.spanProbe[s] = obs.GetOrNewSpan(lbl + ".scan")
	}
	return h
}

// LoadHostDir loads a host from a shard directory (shard.WriteDir
// layout) serving only the shards in own. Every shard file is streamed
// through the shared statistics pools — Eq 7–9 scores depend on
// collection-global unit counts, document frequencies, and unique-term
// averages, so even a host owning one partition must accumulate all of
// them — but only the owned matchers are kept, so steady-state memory
// is proportional to the owned partitions, not the fleet.
func LoadHostDir(dir string, own []int) (*Host, error) {
	shards, m, err := shard.ReadDirShards(dir, own)
	if err != nil {
		return nil, err
	}
	docs := m.Docs
	return NewHost(m.Name, m.Shards, m.RouteSeed, m.Clusters, shards, func() int { return docs }), nil
}

// HostsForGroup wraps a live shard.Group as one Host per shard, all
// sharing the group's matchers and pools — the in-process fleet backend
// the chaos stress test runs Related and Add against concurrently.
func HostsForGroup(g *shard.Group) map[int]*Host {
	out := make(map[int]*Host, g.NumShards())
	for s := 0; s < g.NumShards(); s++ {
		out[s] = NewHost(g.Name(), g.NumShards(), g.Seed(), g.NumClusters(),
			map[int]*match.MR{s: g.ShardMR(s)}, g.NumDocs)
	}
	return out
}

// Meta implements the /internal/meta self-description.
func (h *Host) Meta() *Meta {
	own := make([]int, 0, len(h.shards))
	for s := range h.shards {
		own = append(own, s)
	}
	for i := 1; i < len(own); i++ { // insertion sort; a host owns a handful
		for j := i; j > 0 && own[j] < own[j-1]; j-- {
			own[j], own[j-1] = own[j-1], own[j]
		}
	}
	return &Meta{
		Name:        h.name,
		Shards:      own,
		TotalShards: h.total,
		Seed:        h.seed,
		Docs:        h.docs(),
		Clusters:    h.clusters,
		Epoch:       h.epoch,
		Params: MetaParams{
			NFactor:        h.cfg.NFactor,
			ScoreThreshold: h.cfg.ScoreThreshold,
			NormalizeLists: h.cfg.NormalizeLists,
		},
		Wire: WireVersion,
	}
}

// Epoch returns the host's snapshot epoch.
func (h *Host) Epoch() uint64 { return h.epoch }

// Owns reports whether this host serves shard s.
func (h *Host) Owns(s int) bool { _, ok := h.shards[s]; return ok }

// badRequest builds the typed 400 for malformed internal requests.
func badRequest(format string, args ...any) *RPCError {
	return &RPCError{Status: http.StatusBadRequest, Kind: "bad_request", Msg: fmt.Sprintf(format, args...)}
}

// errNotOwned is the typed failure for probing a shard this host does
// not serve — permanent: retrying the same endpoint cannot help.
func errNotOwned(s int) *RPCError {
	return &RPCError{Status: http.StatusMisdirectedRequest, Kind: "not_owned", Msg: fmt.Sprintf("shard %d not served here", s)}
}

// HandleHome answers a home leg: resolve the reference document's
// frozen probes and scan this shard's partition with the document
// itself excluded, at the full unsharded depth for k.
func (h *Host) HandleHome(req *HomeRequest) (*HomeResponse, error) {
	mr, ok := h.shards[req.Shard]
	if !ok {
		return nil, errNotOwned(req.Shard)
	}
	if req.K <= 0 {
		return nil, badRequest("home leg needs k >= 1, got %d", req.K)
	}
	probes := mr.QuerySegs(req.LocalDoc)
	if probes == nil {
		return nil, ErrUnknownDoc
	}
	n := h.cfg.ListDepth(req.K)
	t := h.openTrace(req.Trace, req.TraceID, "home", req.Shard)
	st := h.spanProbe[req.Shard].Start()
	lists := mr.QueryClusterLists(probes, n, req.LocalDoc, nil, t)
	st.Stop()
	if t != nil {
		t.Event("host.lists", obs.N("probes", int64(len(probes))), obs.N("depth", int64(n)), obs.N("candidates", totalWidth(lists)))
	}
	h.ctrHome[req.Shard].Inc()
	return &HomeResponse{
		Probes: toWireProbes(probes),
		Lists:  toWireLists(lists),
		N:      n,
		Epoch:  h.epoch,
		Docs:   h.docs(),
		Trace:  h.closeTrace(t),
	}, nil
}

// totalWidth sums the per-cluster candidate list widths — the merge
// size the coordinator will pay for this leg.
func totalWidth(lists [][]match.Result) int64 {
	var n int64
	for _, l := range lists {
		n += int64(len(l))
	}
	return n
}

// HandleProbe answers a sibling scan: frozen probes against this
// shard's partition, optionally pruning below the home-seeded floors.
func (h *Host) HandleProbe(req *ProbeRequest) (*ProbeResponse, error) {
	mr, ok := h.shards[req.Shard]
	if !ok {
		return nil, errNotOwned(req.Shard)
	}
	if req.Depth <= 0 {
		return nil, badRequest("probe needs depth >= 1, got %d", req.Depth)
	}
	if len(req.Floors) != 0 && len(req.Floors) != len(req.Probes) {
		return nil, badRequest("floors length %d does not match %d probes", len(req.Floors), len(req.Probes))
	}
	probes := toClusterQueries(req.Probes)
	t := h.openTrace(req.Trace, req.TraceID, "probe", req.Shard)
	st := h.spanProbe[req.Shard].Start()
	lists := mr.QueryClusterLists(probes, req.Depth, -1, req.Floors, t)
	st.Stop()
	if t != nil {
		t.Event("host.lists", obs.N("probes", int64(len(probes))), obs.N("depth", int64(req.Depth)), obs.N("candidates", totalWidth(lists)))
	}
	h.ctrProbe[req.Shard].Inc()
	return &ProbeResponse{
		Lists: toWireLists(lists),
		Epoch: h.epoch,
		Docs:  h.docs(),
		Trace: h.closeTrace(t),
	}, nil
}

// HandleExplain answers term-level Eq 7–9 breakdowns for result
// documents owned by one of this host's shards.
func (h *Host) HandleExplain(req *ExplainRequest) (*ExplainResponse, error) {
	mr, ok := h.shards[req.Shard]
	if !ok {
		return nil, errNotOwned(req.Shard)
	}
	t := h.openTrace(req.Trace, req.TraceID, "explain", req.Shard)
	out := make([][]match.TermContribution, len(req.Items))
	for i, it := range req.Items {
		out[i] = mr.ExplainDocCluster(it.LocalDoc, it.Cluster, probeTF(it.Terms, it.QF), it.Norm)
	}
	if t != nil {
		t.Event("host.explained", obs.N("items", int64(len(req.Items))))
	}
	h.ctrExplain[req.Shard].Inc()
	return &ExplainResponse{Items: out, Epoch: h.epoch, Trace: h.closeTrace(t)}, nil
}

// MetricsSnapshot is the /internal/metricsz payload: this process's raw
// registry view. Registry instruments are process-global, so a host
// sharing a process with others (LocalTransport fleets) reports the
// shared registry — real fleets run one host per process.
func (h *Host) MetricsSnapshot() obs.Snapshot { return obs.Default.Snapshot() }
