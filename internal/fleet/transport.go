package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"repro/internal/obs"
)

// Transport is how the coordinator reaches shard servers. It is
// deliberately asynchronous — each call arranges for deliver to be
// invoked at most once, later, with the response or an error — because
// that shape admits three implementations with identical coordinator
// code above them:
//
//   - HTTPTransport: real network calls, deliver runs on a goroutine.
//   - LocalTransport: in-process hosts, deliver runs synchronously
//     before the call returns.
//   - Chaos: wraps either, rescheduling deliveries through the Clock to
//     script delays, errors, and drops deterministically.
//
// Contract: deliver is called at most once per call ("drop" faults
// simply never deliver — the coordinator's per-attempt deadline is the
// only recovery, exactly as with a real black-holed packet). Transports
// should stop work when ctx is done but need not deliver a cancellation
// error; the coordinator never blocks on a specific call. deliver may
// run on any goroutine; the coordinator's inbox serializes.
type Transport interface {
	// Home runs a query's home leg on the server at endpoint.
	Home(ctx context.Context, endpoint string, req *HomeRequest, deliver func(*HomeResponse, error))
	// Probe runs a sibling scan on the server at endpoint.
	Probe(ctx context.Context, endpoint string, req *ProbeRequest, deliver func(*ProbeResponse, error))
	// Explain fetches term-level contribution breakdowns.
	Explain(ctx context.Context, endpoint string, req *ExplainRequest, deliver func(*ExplainResponse, error))
	// Meta fetches a server's self-description.
	Meta(ctx context.Context, endpoint string, deliver func(*Meta, error))
	// Metrics fetches a server's raw observability snapshot — the
	// federated-scrape leg behind the coordinator's /metrics?scope=fleet.
	Metrics(ctx context.Context, endpoint string, deliver func(*obs.Snapshot, error))
}

// RPCError is a typed failure from a shard server. Status carries the
// HTTP status (or 0 for pre-response failures); Kind is the server's
// machine-readable error code when it sent one.
type RPCError struct {
	Status int
	Kind   string
	Msg    string
}

// Error implements error.
func (e *RPCError) Error() string {
	if e.Kind != "" {
		return fmt.Sprintf("fleet: rpc %s (status %d): %s", e.Kind, e.Status, e.Msg)
	}
	return fmt.Sprintf("fleet: rpc status %d: %s", e.Status, e.Msg)
}

// ErrUnknownDoc is the typed "document not on this server" failure —
// permanent for the attempt, and mapped to the public 404.
var ErrUnknownDoc = &RPCError{Status: http.StatusNotFound, Kind: "unknown_doc", Msg: "document not found"}

// ErrEpochMismatch is raised coordinator-side when a reply's snapshot
// epoch disagrees with the fleet's: the server holds a different build
// or topology, and its lists must not be merged. Transient from the
// retry loop's point of view — a replica on the right snapshot may
// still answer.
var ErrEpochMismatch = errors.New("fleet: reply from a different snapshot epoch")

// IsTransient reports whether an attempt failure is worth retrying or
// failing over: network-level errors, 5xx statuses, and epoch
// mismatches are; 4xx responses (bad request, unknown document) mean
// every retry would fail identically.
func IsTransient(err error) bool {
	var rpc *RPCError
	if errors.As(err, &rpc) {
		return rpc.Status == 0 || rpc.Status >= 500
	}
	return true
}

// HTTPTransport reaches shard servers over HTTP: one POST per leg, JSON
// bodies, responses decoded off a shared client. The zero value uses
// http.DefaultClient.
type HTTPTransport struct {
	// Client issues the requests; http.DefaultClient when nil. Callers
	// running fleets at scale should set one with a tuned
	// MaxIdleConnsPerHost — every leg of every query hits the same few
	// endpoints.
	Client *http.Client
}

// NewHTTPTransport returns a transport with a connection-pooled client
// suitable for a small fleet.
func NewHTTPTransport() *HTTPTransport {
	tr := http.DefaultTransport.(*http.Transport).Clone()
	tr.MaxIdleConnsPerHost = 32
	return &HTTPTransport{Client: &http.Client{Transport: tr, Timeout: 30 * time.Second}}
}

func (t *HTTPTransport) client() *http.Client {
	if t.Client != nil {
		return t.Client
	}
	return http.DefaultClient
}

// serverError is the error-body shape internal endpoints send (the same
// {"error": {...}} envelope as the public surface).
type serverError struct {
	Error struct {
		Kind string `json:"kind"`
		Msg  string `json:"message"`
	} `json:"error"`
}

// roundTrip POSTs req as JSON to url (or GETs when req is nil) and
// decodes the response into out, translating non-2xx statuses into
// *RPCError.
func (t *HTTPTransport) roundTrip(ctx context.Context, url string, req, out any) error {
	var hr *http.Request
	var err error
	if req == nil {
		hr, err = http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	} else {
		var body bytes.Buffer
		if err := json.NewEncoder(&body).Encode(req); err != nil {
			return &RPCError{Kind: "encode", Msg: err.Error()}
		}
		hr, err = http.NewRequestWithContext(ctx, http.MethodPost, url, &body)
		if hr != nil {
			hr.Header.Set("Content-Type", "application/json")
		}
	}
	if err != nil {
		return &RPCError{Kind: "request", Msg: err.Error()}
	}
	resp, err := t.client().Do(hr)
	if err != nil {
		return &RPCError{Kind: "dial", Msg: err.Error()}
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		var se serverError
		if json.Unmarshal(raw, &se) == nil && se.Error.Kind != "" {
			return &RPCError{Status: resp.StatusCode, Kind: se.Error.Kind, Msg: se.Error.Msg}
		}
		return &RPCError{Status: resp.StatusCode, Msg: string(raw)}
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		return &RPCError{Kind: "decode", Msg: err.Error()}
	}
	return nil
}

// Home implements Transport.
func (t *HTTPTransport) Home(ctx context.Context, endpoint string, req *HomeRequest, deliver func(*HomeResponse, error)) {
	go func() {
		var out HomeResponse
		if err := t.roundTrip(ctx, endpoint+"/internal/home", req, &out); err != nil {
			deliver(nil, err)
			return
		}
		deliver(&out, nil)
	}()
}

// Probe implements Transport.
func (t *HTTPTransport) Probe(ctx context.Context, endpoint string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	go func() {
		var out ProbeResponse
		if err := t.roundTrip(ctx, endpoint+"/internal/probe", req, &out); err != nil {
			deliver(nil, err)
			return
		}
		deliver(&out, nil)
	}()
}

// Explain implements Transport.
func (t *HTTPTransport) Explain(ctx context.Context, endpoint string, req *ExplainRequest, deliver func(*ExplainResponse, error)) {
	go func() {
		var out ExplainResponse
		if err := t.roundTrip(ctx, endpoint+"/internal/explain", req, &out); err != nil {
			deliver(nil, err)
			return
		}
		deliver(&out, nil)
	}()
}

// Meta implements Transport.
func (t *HTTPTransport) Meta(ctx context.Context, endpoint string, deliver func(*Meta, error)) {
	go func() {
		var out Meta
		if err := t.roundTrip(ctx, endpoint+"/internal/meta", nil, &out); err != nil {
			deliver(nil, err)
			return
		}
		deliver(&out, nil)
	}()
}

// Metrics implements Transport.
func (t *HTTPTransport) Metrics(ctx context.Context, endpoint string, deliver func(*obs.Snapshot, error)) {
	go func() {
		var out obs.Snapshot
		if err := t.roundTrip(ctx, endpoint+"/internal/metricsz", nil, &out); err != nil {
			deliver(nil, err)
			return
		}
		deliver(&out, nil)
	}()
}
