package fleet

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/match"
	"repro/internal/obs"
)

// Edge cases of the degradation machinery: clock semantics, bootstrap
// validation, exact retry/backoff timing, and leg release on the
// cancellation paths.

func TestVirtualClockOrdering(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	var fired []string
	clock.AfterFunc(30*time.Millisecond, func() { fired = append(fired, "c") })
	clock.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "a") })
	clock.AfterFunc(10*time.Millisecond, func() { fired = append(fired, "b") }) // same instant: registration order
	clock.AfterFunc(-5*time.Millisecond, func() { fired = append(fired, "now") })

	notify := make(chan struct{}, 1)
	ctx := context.Background()
	if got := clock.Wait(ctx, notify, clock.Now().Add(20*time.Millisecond)); got != WaitDeadline {
		t.Fatalf("Wait outcome %v, want WaitDeadline", got)
	}
	if want := "now,a,b"; strings.Join(fired, ",") != want {
		t.Fatalf("events fired as %v, want %s (time then registration order)", fired, want)
	}
	if got := clock.Now().Sub(time.Unix(0, 0)); got != 20*time.Millisecond {
		t.Fatalf("clock at %v after Wait, want 20ms", got)
	}
	// The 30ms event is still pending; a later Wait past it fires it.
	if got := clock.Wait(ctx, notify, clock.Now().Add(time.Hour)); got != WaitDeadline {
		t.Fatalf("second Wait outcome %v", got)
	}
	if strings.Join(fired, ",") != "now,a,b,c" {
		t.Fatalf("pending event lost: %v", fired)
	}

	// A due notify beats the deadline; a canceled context beats both.
	notify <- struct{}{}
	if got := clock.Wait(ctx, notify, clock.Now()); got != WaitNotified {
		t.Fatalf("pending notify: outcome %v, want WaitNotified", got)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if got := clock.Wait(cctx, notify, clock.Now().Add(time.Hour)); got != WaitCanceled {
		t.Fatalf("canceled ctx: outcome %v, want WaitCanceled", got)
	}
}

// An event callback that causes a delivery must be observed before any
// later-scheduled event fires — the "deliveries cannot be overtaken"
// guarantee the chaos suite depends on.
func TestVirtualClockDeliveryBeatsLaterEvent(t *testing.T) {
	clock := NewVirtualClock(time.Unix(0, 0))
	notify := make(chan struct{}, 1)
	late := false
	clock.AfterFunc(10*time.Millisecond, func() { notify <- struct{}{} })
	clock.AfterFunc(20*time.Millisecond, func() { late = true })
	if got := clock.Wait(context.Background(), notify, clock.Now().Add(time.Hour)); got != WaitNotified {
		t.Fatalf("outcome %v, want WaitNotified", got)
	}
	if late {
		t.Fatalf("the 20ms event fired before the 10ms delivery was observed")
	}
}

func TestRealClockWait(t *testing.T) {
	clock := RealClock{}
	notify := make(chan struct{}, 1)
	ctx := context.Background()
	if got := clock.Wait(ctx, notify, time.Now().Add(-time.Second)); got != WaitDeadline {
		t.Fatalf("past deadline, empty inbox: %v, want WaitDeadline", got)
	}
	notify <- struct{}{}
	if got := clock.Wait(ctx, notify, time.Now().Add(-time.Second)); got != WaitNotified {
		t.Fatalf("past deadline, pending delivery: %v, want WaitNotified", got)
	}
	notify <- struct{}{}
	if got := clock.Wait(ctx, notify, time.Now().Add(time.Minute)); got != WaitNotified {
		t.Fatalf("future deadline, pending delivery: %v, want WaitNotified", got)
	}
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if got := clock.Wait(cctx, notify, time.Now().Add(time.Minute)); got != WaitCanceled {
		t.Fatalf("canceled: %v, want WaitCanceled", got)
	}
	if got := clock.Wait(ctx, notify, time.Now().Add(2*time.Millisecond)); got != WaitDeadline {
		t.Fatalf("short deadline: %v, want WaitDeadline", got)
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if _, ok := o.Clock.(RealClock); !ok {
		t.Fatalf("default clock %T, want RealClock", o.Clock)
	}
	if o.Timeout != 2*time.Second || o.AttemptTimeout != 500*time.Millisecond ||
		o.Retries != 2 || o.Backoff != 25*time.Millisecond ||
		o.HedgeAfter != 100*time.Millisecond || o.HedgeQuantile != 0.9 {
		t.Fatalf("unexpected defaults: %+v", o)
	}
	if noRetry := (Options{Retries: -1}).withDefaults(); noRetry.Retries != 0 {
		t.Fatalf("Retries -1 should mean zero retries, got %d", noRetry.Retries)
	}
}

func TestBootstrapValidation(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 80, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 2, 42, 0)
	clock := NewVirtualClock(time.Unix(0, 0))
	try := func(topo Topology) error {
		_, err := New(context.Background(), topo, vopts(f.lt, clock))
		return err
	}
	wantErr := func(name string, err error, frag string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), frag) {
			t.Fatalf("%s: got %v, want error containing %q", name, err, frag)
		}
	}

	wantErr("empty", try(Topology{}), "empty")
	wantErr("no-transport", func() error {
		_, err := New(context.Background(), f.topo(0), Options{})
		return err
	}(), "Transport is required")
	wantErr("duplicate-shard", try(Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "s0"}, {Shard: 0, Primary: "s1"},
	}}), "twice")
	wantErr("no-primary", try(Topology{Endpoints: []ShardEndpoints{{Shard: 0}}}), "no primary")
	wantErr("wrong-owner", try(Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "s1"}, {Shard: 1, Primary: "s0"},
	}}), "serves shards")
	wantErr("under-covered", try(Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "s0"},
	}}), "topology lists")
	wantErr("dead-endpoint", try(Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "s0"}, {Shard: 1, Primary: "nowhere"},
	}}), "bootstrapping shard 1")

	// Mixed snapshot lineages across the fleet must be refused outright.
	imposter := NewHost("other-build", 2, f.g.Seed(), f.g.NumClusters(),
		map[int]*match.MR{1: f.g.ShardMR(1)}, f.g.NumDocs)
	f.lt.AddHost("imposter", imposter)
	wantErr("mixed-epochs", try(Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "s0"}, {Shard: 1, Primary: "imposter"},
	}}), "epoch")

	// A dead primary with a live replica bootstraps fine.
	if _, err := New(context.Background(), Topology{Endpoints: []ShardEndpoints{
		{Shard: 0, Primary: "nowhere", Replicas: []string{"s0"}},
		{Shard: 1, Primary: "s1"},
	}}, vopts(f.lt, clock)); err != nil {
		t.Fatalf("replica fallback during bootstrap failed: %v", err)
	}
}

// launchRecorder timestamps every attempt the coordinator launches, so
// the backoff test can pin the exact retry schedule.
type launchRecorder struct {
	inner Transport
	clock Clock
	mu    sync.Mutex
	times map[string][]time.Duration // "endpoint/kind" → launch offsets
}

func (r *launchRecorder) record(endpoint, kind string) {
	r.mu.Lock()
	key := endpoint + "/" + kind
	r.times[key] = append(r.times[key], r.clock.Now().Sub(time.Unix(0, 0)))
	r.mu.Unlock()
}

func (r *launchRecorder) Home(ctx context.Context, ep string, req *HomeRequest, deliver func(*HomeResponse, error)) {
	r.record(ep, "home")
	r.inner.Home(ctx, ep, req, deliver)
}

func (r *launchRecorder) Probe(ctx context.Context, ep string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	r.record(ep, "probe")
	r.inner.Probe(ctx, ep, req, deliver)
}

func (r *launchRecorder) Explain(ctx context.Context, ep string, req *ExplainRequest, deliver func(*ExplainResponse, error)) {
	r.record(ep, "explain")
	r.inner.Explain(ctx, ep, req, deliver)
}

func (r *launchRecorder) Meta(ctx context.Context, ep string, deliver func(*Meta, error)) {
	r.record(ep, "meta")
	r.inner.Meta(ctx, ep, deliver)
}

func (r *launchRecorder) Metrics(ctx context.Context, ep string, deliver func(*obs.Snapshot, error)) {
	r.record(ep, "metrics")
	r.inner.Metrics(ctx, ep, deliver)
}

// TestBackoffSchedule pins the exact retry timing: transient errors
// back off 10ms, then 20ms, then 40ms (doubling), so launches land at
// t = 0, 10, 30, 70ms.
func TestBackoffSchedule(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 80, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 2, 42, 0)
	clock := NewVirtualClock(time.Unix(0, 0))
	ch := NewChaos(f.lt, clock)
	rec := &launchRecorder{inner: ch, clock: clock, times: make(map[string][]time.Duration)}
	c, err := New(context.Background(), f.topo(0), vopts(rec, clock))
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	doc := 0
	home := f.g.Route(doc)
	sib := 1 - home
	flap := ChaosAction{Err: &RPCError{Status: 500, Kind: "injected", Msg: "flap"}}
	ch.Script(epName(sib, 0), "probe", flap, flap, flap)
	res, rerr := c.Related(context.Background(), doc, 5, nil)
	if rerr != nil {
		t.Fatalf("Related: %v", rerr)
	}
	if res.Partial {
		t.Fatalf("three flaps with budget for four attempts should still complete")
	}
	got := rec.times[epName(sib, 0)+"/probe"]
	want := []time.Duration{0, 10 * time.Millisecond, 30 * time.Millisecond, 70 * time.Millisecond}
	if len(got) != len(want) {
		t.Fatalf("launch offsets %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("launch offsets %v, want %v", got, want)
		}
	}
}

// probeLeaker forwards home legs but turns probes into goroutines
// parked on the attempt context — the shape of a real transport with a
// stuck connection. Every park must be released by the time a query
// returns, whatever path ended it.
type probeLeaker struct {
	inner Transport
	wg    sync.WaitGroup
}

func (p *probeLeaker) Home(ctx context.Context, ep string, req *HomeRequest, deliver func(*HomeResponse, error)) {
	p.inner.Home(ctx, ep, req, deliver)
}

func (p *probeLeaker) Probe(ctx context.Context, ep string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	p.wg.Add(1)
	go func() {
		defer p.wg.Done()
		<-ctx.Done()
	}()
}

func (p *probeLeaker) Explain(ctx context.Context, ep string, req *ExplainRequest, deliver func(*ExplainResponse, error)) {
	p.inner.Explain(ctx, ep, req, deliver)
}

func (p *probeLeaker) Meta(ctx context.Context, ep string, deliver func(*Meta, error)) {
	p.inner.Meta(ctx, ep, deliver)
}

func (p *probeLeaker) Metrics(ctx context.Context, ep string, deliver func(*obs.Snapshot, error)) {
	p.inner.Metrics(ctx, ep, deliver)
}

// TestBudgetReleasesAllLegs: a query that ends by budget exhaustion
// must cancel the context of every outstanding attempt — a transport
// goroutine blocked on one would otherwise leak per query.
func TestBudgetReleasesAllLegs(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 80, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 7}, 4, 42, 0)
	clock := NewVirtualClock(time.Unix(0, 0))
	leaker := &probeLeaker{inner: f.lt}
	c, err := New(context.Background(), f.topo(0), Options{
		Transport: leaker, Clock: clock,
		Timeout: 200 * time.Millisecond, AttemptTimeout: 10 * time.Second, Retries: -1,
	})
	if err != nil {
		t.Fatalf("fleet.New: %v", err)
	}
	res, rerr := c.Related(context.Background(), 0, 5, nil)
	if rerr != nil {
		t.Fatalf("Related: %v", rerr)
	}
	if !res.Partial || len(res.Missing) != 3 {
		t.Fatalf("expected all three siblings missing, got partial=%v missing=%v", res.Partial, res.Missing)
	}
	released := make(chan struct{})
	go func() { leaker.wg.Wait(); close(released) }()
	select {
	case <-released:
	case <-time.After(2 * time.Second):
		t.Fatalf("parked transport goroutines were not released after the query returned")
	}
}
