package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/forum"
	"repro/internal/match"
)

// Tests for the HTTP half of the Transport interface: the wire protocol
// must survive a real socket (equivalence with the LocalTransport over
// the same hosts), and every failure shape — typed error envelopes,
// prose error bodies, refused connections, garbage payloads — must come
// back as a well-formed *RPCError the retry loop can classify.

// hostHandler adapts a Host to the internal HTTP surface, mirroring
// what internal/serve.ShardServer mounts (serve imports this package,
// so these in-package tests re-build the thin mux instead).
func hostHandler(t testing.TB, h *Host) http.Handler {
	t.Helper()
	writeErr := func(w http.ResponseWriter, err error) {
		status, kind := http.StatusInternalServerError, "internal"
		var rpc *RPCError
		if errors.As(err, &rpc) {
			status, kind = rpc.Status, rpc.Kind
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_ = json.NewEncoder(w).Encode(map[string]map[string]string{
			"error": {"kind": kind, "message": err.Error()},
		})
	}
	writeOK := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			t.Errorf("encode response: %v", err)
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /internal/home", func(w http.ResponseWriter, r *http.Request) {
		var req HomeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, badRequest("%v", err))
			return
		}
		resp, err := h.HandleHome(&req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeOK(w, resp)
	})
	mux.HandleFunc("POST /internal/probe", func(w http.ResponseWriter, r *http.Request) {
		var req ProbeRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, badRequest("%v", err))
			return
		}
		resp, err := h.HandleProbe(&req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeOK(w, resp)
	})
	mux.HandleFunc("POST /internal/explain", func(w http.ResponseWriter, r *http.Request) {
		var req ExplainRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeErr(w, badRequest("%v", err))
			return
		}
		resp, err := h.HandleExplain(&req)
		if err != nil {
			writeErr(w, err)
			return
		}
		writeOK(w, resp)
	})
	mux.HandleFunc("GET /internal/meta", func(w http.ResponseWriter, r *http.Request) {
		writeOK(w, h.Meta())
	})
	return mux
}

// TestHTTPTransportFleet runs a coordinator over real sockets and
// requires its rankings and explanations to match the LocalTransport
// coordinator over the very same hosts, for every document.
func TestHTTPTransportFleet(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 60, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 42}, 2, 42, 0)

	var topo Topology
	for s := 0; s < f.g.NumShards(); s++ {
		ts := httptest.NewServer(hostHandler(t, f.hosts[s]))
		t.Cleanup(ts.Close)
		topo.Endpoints = append(topo.Endpoints, ShardEndpoints{Shard: s, Primary: ts.URL})
	}
	httpC := f.coordinator(t, topo, Options{Transport: NewHTTPTransport()})
	localC := f.coordinator(t, f.topo(0), Options{Transport: f.lt})

	if httpC.Epoch() != localC.Epoch() || httpC.Epoch() == 0 {
		t.Fatalf("epoch over HTTP %d, local %d", httpC.Epoch(), localC.Epoch())
	}
	if httpC.Name() != "MR" || httpC.NumShards() != 2 || httpC.NumDocs() != len(docs) {
		t.Fatalf("bootstrap meta diverged: name %q shards %d docs %d",
			httpC.Name(), httpC.NumShards(), httpC.NumDocs())
	}
	for d := 0; d < len(docs); d++ {
		want, err := localC.Related(context.Background(), d, 5, nil)
		if err != nil {
			t.Fatalf("local Related(%d): %v", d, err)
		}
		got, err := httpC.Related(context.Background(), d, 5, nil)
		if err != nil {
			t.Fatalf("http Related(%d): %v", d, err)
		}
		if got.Partial {
			t.Fatalf("healthy HTTP fleet answered doc %d partially", d)
		}
		sameResults(t, "http vs local", want.Results, got.Results)
	}
	// One explained query end-to-end: the wire explain items must
	// reconstruct identical term breakdowns.
	wres, wexp, err := localC.RelatedExplained(context.Background(), 3, 5, nil)
	if err != nil {
		t.Fatalf("local RelatedExplained: %v", err)
	}
	gres, gexp, err := httpC.RelatedExplained(context.Background(), 3, 5, nil)
	if err != nil {
		t.Fatalf("http RelatedExplained: %v", err)
	}
	sameResults(t, "explained http vs local", wres.Results, gres.Results)
	if wb, gb := mustJSON(t, wexp), mustJSON(t, gexp); !strings.EqualFold(string(wb), string(gb)) {
		t.Fatalf("explanations diverge over HTTP:\nlocal: %s\nhttp:  %s", wb, gb)
	}
}

// TestHTTPTransportErrors pins the classification of every failure
// shape roundTrip can meet.
func TestHTTPTransportErrors(t *testing.T) {
	tr := NewHTTPTransport()
	call := func(f func(deliver func(any, error))) error {
		t.Helper()
		ch := make(chan error, 1)
		f(func(_ any, err error) { ch <- err })
		select {
		case err := <-ch:
			return err
		case <-time.After(10 * time.Second):
			t.Fatal("transport never delivered")
			return nil
		}
	}
	wantRPC := func(err error, status int, kind string) *RPCError {
		t.Helper()
		var rpc *RPCError
		if !errors.As(err, &rpc) {
			t.Fatalf("want *RPCError, got %T: %v", err, err)
		}
		if rpc.Status != status || rpc.Kind != kind {
			t.Fatalf("want status=%d kind=%q, got %v", status, kind, rpc)
		}
		return rpc
	}

	t.Run("typed-envelope", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			w.WriteHeader(http.StatusNotFound)
			_, _ = w.Write([]byte(`{"error": {"kind": "unknown_doc", "message": "document not found"}}`))
		}))
		defer ts.Close()
		err := call(func(d func(any, error)) {
			tr.Home(context.Background(), ts.URL, &HomeRequest{K: 5}, func(r *HomeResponse, e error) { d(r, e) })
		})
		rpc := wantRPC(err, http.StatusNotFound, "unknown_doc")
		if !strings.Contains(rpc.Error(), "unknown_doc") {
			t.Fatalf("typed Error() should name the kind: %q", rpc.Error())
		}
		if IsTransient(err) {
			t.Fatalf("404 must be permanent: %v", err)
		}
	})
	t.Run("prose-body", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer ts.Close()
		err := call(func(d func(any, error)) {
			tr.Probe(context.Background(), ts.URL, &ProbeRequest{Depth: 1}, func(r *ProbeResponse, e error) { d(r, e) })
		})
		rpc := wantRPC(err, http.StatusInternalServerError, "")
		if !strings.Contains(rpc.Error(), "boom") {
			t.Fatalf("prose Error() should carry the body: %q", rpc.Error())
		}
		if !IsTransient(err) {
			t.Fatalf("500 must be transient: %v", err)
		}
	})
	t.Run("garbage-payload", func(t *testing.T) {
		ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("not json"))
		}))
		defer ts.Close()
		err := call(func(d func(any, error)) {
			tr.Explain(context.Background(), ts.URL, &ExplainRequest{}, func(r *ExplainResponse, e error) { d(r, e) })
		})
		wantRPC(err, 0, "decode")
	})
	t.Run("refused", func(t *testing.T) {
		ts := httptest.NewServer(http.NotFoundHandler())
		url := ts.URL
		ts.Close()
		err := call(func(d func(any, error)) {
			tr.Meta(context.Background(), url, func(m *Meta, e error) { d(m, e) })
		})
		wantRPC(err, 0, "dial")
		if !IsTransient(err) {
			t.Fatalf("refused connection must be transient: %v", err)
		}
	})
	t.Run("bad-endpoint", func(t *testing.T) {
		err := call(func(d func(any, error)) {
			tr.Meta(context.Background(), "http://\x00bad", func(m *Meta, e error) { d(m, e) })
		})
		wantRPC(err, 0, "request")
	})
	t.Run("zero-value-client", func(t *testing.T) {
		var zero HTTPTransport
		if zero.client() != http.DefaultClient {
			t.Fatal("zero-value transport must fall back to http.DefaultClient")
		}
	})
}

// TestLocalTransportRemoveHost pins the refused-connection semantics of
// a killed in-process host and the no-delivery contract for canceled
// contexts.
func TestLocalTransportRemoveHost(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 20, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 42}, 1, 42, 0)
	f.lt.RemoveHost(epName(0, 0))

	delivered := 0
	wantDial := func(err error) {
		t.Helper()
		delivered++
		var rpc *RPCError
		if !errors.As(err, &rpc) || rpc.Kind != "dial" {
			t.Fatalf("want dial error from removed host, got %v", err)
		}
	}
	ctx := context.Background()
	f.lt.Home(ctx, "s0", &HomeRequest{K: 5}, func(_ *HomeResponse, err error) { wantDial(err) })
	f.lt.Probe(ctx, "s0", &ProbeRequest{Depth: 1}, func(_ *ProbeResponse, err error) { wantDial(err) })
	f.lt.Explain(ctx, "s0", &ExplainRequest{}, func(_ *ExplainResponse, err error) { wantDial(err) })
	f.lt.Meta(ctx, "s0", func(_ *Meta, err error) { wantDial(err) })
	if delivered != 4 {
		t.Fatalf("want 4 dial deliveries, got %d", delivered)
	}

	canceled, cancel := context.WithCancel(ctx)
	cancel()
	f.lt.Home(canceled, "s0", &HomeRequest{K: 5}, func(_ *HomeResponse, _ error) { t.Error("delivered after cancel") })
	f.lt.Probe(canceled, "s0", &ProbeRequest{Depth: 1}, func(_ *ProbeResponse, _ error) { t.Error("delivered after cancel") })
	f.lt.Explain(canceled, "s0", &ExplainRequest{}, func(_ *ExplainResponse, _ error) { t.Error("delivered after cancel") })
	f.lt.Meta(canceled, "s0", func(_ *Meta, _ error) { t.Error("delivered after cancel") })
}

// TestHostRequestValidation drives every malformed internal request
// through the Host handlers: each must come back as the documented
// typed error, never a panic or a wrong answer.
func TestHostRequestValidation(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 30, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 42}, 2, 42, 0)
	h := f.hosts[0]

	wantKind := func(err error, status int, kind string) {
		t.Helper()
		var rpc *RPCError
		if !errors.As(err, &rpc) || rpc.Status != status || rpc.Kind != kind {
			t.Fatalf("want status=%d kind=%q, got %v", status, kind, err)
		}
	}
	if _, err := h.HandleHome(&HomeRequest{Shard: 1, LocalDoc: 0, K: 5}); err == nil {
		t.Fatal("home for a shard this host does not own must fail")
	} else {
		wantKind(err, http.StatusMisdirectedRequest, "not_owned")
		if IsTransient(err) {
			t.Fatalf("not_owned must be permanent: %v", err)
		}
	}
	if _, err := h.HandleHome(&HomeRequest{Shard: 0, LocalDoc: 0, K: 0}); err == nil {
		t.Fatal("home with k=0 must fail")
	} else {
		wantKind(err, http.StatusBadRequest, "bad_request")
	}
	if _, err := h.HandleHome(&HomeRequest{Shard: 0, LocalDoc: 1 << 20, K: 5}); !errors.Is(err, ErrUnknownDoc) {
		t.Fatalf("home for an absent local doc: want ErrUnknownDoc, got %v", err)
	}
	if _, err := h.HandleProbe(&ProbeRequest{Shard: 1, Depth: 10}); err == nil {
		t.Fatal("probe for an unowned shard must fail")
	} else {
		wantKind(err, http.StatusMisdirectedRequest, "not_owned")
	}
	if _, err := h.HandleProbe(&ProbeRequest{Shard: 0, Depth: 0}); err == nil {
		t.Fatal("probe with depth=0 must fail")
	} else {
		wantKind(err, http.StatusBadRequest, "bad_request")
	}
	probes := []WireProbe{{Cluster: 0, Terms: []string{"a"}, QF: []float64{1}, IDF: []float64{1}}}
	if _, err := h.HandleProbe(&ProbeRequest{Shard: 0, Depth: 10, Probes: probes, Floors: []float64{1, 2}}); err == nil {
		t.Fatal("probe with mismatched floors must fail")
	} else {
		wantKind(err, http.StatusBadRequest, "bad_request")
	}
	if _, err := h.HandleExplain(&ExplainRequest{Shard: 1}); err == nil {
		t.Fatal("explain for an unowned shard must fail")
	} else {
		wantKind(err, http.StatusMisdirectedRequest, "not_owned")
	}
	if !h.Owns(0) || h.Owns(1) {
		t.Fatal("host 0 must own exactly shard 0")
	}
}

// TestChaosExplainMetaFaults covers the explain/meta verbs of the
// fault injector directly: scripted errors are delivered, drops are
// black holes, and unscripted calls pass through.
func TestChaosExplainMetaFaults(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 20, 42)
	f := buildBackend(t, docs, match.MRConfig{Seed: 42}, 1, 42, 0)
	clock := NewVirtualClock(time.Unix(0, 0))
	ch := NewChaos(f.lt, clock)

	boom := &RPCError{Status: http.StatusInternalServerError, Kind: "scripted", Msg: "boom"}
	ch.Script("s0", "explain", ChaosAction{Err: boom}, ChaosAction{Drop: true})
	ch.Script("s0", "meta", ChaosAction{Err: boom}, ChaosAction{Drop: true})

	got := 0
	ch.Explain(context.Background(), "s0", &ExplainRequest{}, func(_ *ExplainResponse, err error) {
		got++
		if !errors.Is(err, boom) {
			t.Fatalf("scripted explain error not delivered: %v", err)
		}
	})
	ch.Explain(context.Background(), "s0", &ExplainRequest{}, func(_ *ExplainResponse, _ error) {
		t.Error("dropped explain must never deliver")
	})
	ch.Meta(context.Background(), "s0", func(_ *Meta, err error) {
		got++
		if !errors.Is(err, boom) {
			t.Fatalf("scripted meta error not delivered: %v", err)
		}
	})
	ch.Meta(context.Background(), "s0", func(_ *Meta, _ error) {
		t.Error("dropped meta must never deliver")
	})
	// Script exhausted: the next call passes through to the live host.
	ch.Meta(context.Background(), "s0", func(m *Meta, err error) {
		got++
		if err != nil || m == nil || m.Docs != len(docs) {
			t.Fatalf("pass-through meta: %v / %+v", err, m)
		}
	})
	if got != 3 {
		t.Fatalf("want 3 deliveries, got %d", got)
	}
}

// tamperTransport wraps a LocalTransport, rewriting probe replies —
// the lying-shard fault the scripted Chaos cannot express.
type tamperTransport struct {
	*LocalTransport
	tamper func(*ProbeResponse) *ProbeResponse
}

func (t *tamperTransport) Probe(ctx context.Context, endpoint string, req *ProbeRequest, deliver func(*ProbeResponse, error)) {
	t.LocalTransport.Probe(ctx, endpoint, req, func(resp *ProbeResponse, err error) {
		if resp != nil {
			resp = t.tamper(resp)
		}
		deliver(resp, err)
	})
}

// TestCoordinatorRejectsMalformedReplies: a shard that answers with the
// wrong list count, a foreign snapshot epoch, or an empty delivery must
// be treated as failed — degrading the query to a well-formed partial,
// never merging the bogus lists.
func TestCoordinatorRejectsMalformedReplies(t *testing.T) {
	docs := genDocs(t, forum.TechSupport, 40, 42)
	cases := []struct {
		name   string
		tamper func(*ProbeResponse) *ProbeResponse
	}{
		{"truncated-lists", func(r *ProbeResponse) *ProbeResponse {
			r.Lists = r.Lists[:0]
			return r
		}},
		{"foreign-epoch", func(r *ProbeResponse) *ProbeResponse {
			r.Epoch++
			return r
		}},
		{"empty-delivery", func(r *ProbeResponse) *ProbeResponse { return nil }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := buildBackend(t, docs, match.MRConfig{Seed: 42}, 2, 42, 0)
			tt := &tamperTransport{LocalTransport: f.lt, tamper: tc.tamper}
			c := f.coordinator(t, f.topo(0), Options{
				Transport:      tt,
				Timeout:        2 * time.Second,
				AttemptTimeout: 200 * time.Millisecond,
				Retries:        -1,
			})
			res, err := c.Related(context.Background(), 3, 5, nil)
			if err != nil {
				t.Fatalf("Related under a lying sibling must degrade, not fail: %v", err)
			}
			if !res.Partial || len(res.Missing) != 1 {
				t.Fatalf("want partial with one missing shard, got partial=%v missing=%v", res.Partial, res.Missing)
			}
			home := f.g.Route(3)
			if res.Missing[0] == home {
				t.Fatalf("the home leg does not probe; shard %d cannot be the missing one", home)
			}
		})
	}
}
