package lda

import (
	"math"
	"testing"
	"testing/quick"
)

// twoTopicCorpus builds documents drawn from two disjoint vocabularies.
func twoTopicCorpus(nPer int) [][]string {
	hw := []string{"raid", "disk", "controller", "driver", "bios", "firmware"}
	travel := []string{"hotel", "pool", "beach", "breakfast", "room", "staff"}
	var docs [][]string
	for i := 0; i < nPer; i++ {
		var a, b []string
		for j := 0; j < 8; j++ {
			a = append(a, hw[(i+j)%len(hw)])
			b = append(b, travel[(i*3+j)%len(travel)])
		}
		docs = append(docs, a, b)
	}
	return docs
}

func TestTrainSeparatesTopics(t *testing.T) {
	docs := twoTopicCorpus(20)
	m, err := Train(docs, Config{K: 2, Iterations: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// Hardware docs (even indices) should be dominated by one topic, travel
	// docs (odd) by the other.
	hwTopic := argmax(m.DocTopics(0))
	agree := 0
	for d := 0; d < m.NumDocs(); d++ {
		top := argmax(m.DocTopics(d))
		if (d%2 == 0) == (top == hwTopic) {
			agree++
		}
	}
	if frac := float64(agree) / float64(m.NumDocs()); frac < 0.9 {
		t.Errorf("topic separation %.2f < 0.9", frac)
	}
}

func TestTrainDeterministic(t *testing.T) {
	docs := twoTopicCorpus(5)
	m1, err := Train(docs, Config{K: 2, Iterations: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Train(docs, Config{K: 2, Iterations: 30, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < m1.NumDocs(); d++ {
		a, b := m1.DocTopics(d), m2.DocTopics(d)
		for i := range a {
			if a[i] != b[i] {
				t.Fatal("same seed produced different models")
			}
		}
	}
}

func TestDocTopicsAreDistributions(t *testing.T) {
	docs := twoTopicCorpus(10)
	m, err := Train(docs, Config{K: 3, Iterations: 50, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	for d := 0; d < m.NumDocs(); d++ {
		var sum float64
		for _, p := range m.DocTopics(d) {
			if p < 0 {
				t.Fatal("negative probability")
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("doc %d topics sum to %v", d, sum)
		}
	}
}

func TestTrainErrors(t *testing.T) {
	if _, err := Train(nil, Config{K: 2}); err == nil {
		t.Error("Train(nil) should fail")
	}
	if _, err := Train([][]string{{}, {}}, Config{K: 2}); err == nil {
		t.Error("Train with empty vocabulary should fail")
	}
}

func TestInfer(t *testing.T) {
	docs := twoTopicCorpus(20)
	m, err := Train(docs, Config{K: 2, Iterations: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hwTopic := argmax(m.DocTopics(0))
	theta := m.Infer([]string{"raid", "disk", "driver", "bios", "raid"}, 50, 3)
	if argmax(theta) != hwTopic {
		t.Errorf("inferred topic %d for hardware text, want %d (theta=%v)", argmax(theta), hwTopic, theta)
	}
	var sum float64
	for _, p := range theta {
		sum += p
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("inferred distribution sums to %v", sum)
	}
	// Unknown vocabulary → uniform.
	u := m.Infer([]string{"zzz", "qqq"}, 10, 1)
	for _, p := range u {
		if math.Abs(p-0.5) > 1e-9 {
			t.Errorf("unknown-word inference not uniform: %v", u)
		}
	}
}

func TestTopWords(t *testing.T) {
	docs := twoTopicCorpus(20)
	m, err := Train(docs, Config{K: 2, Iterations: 150, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	hwTopic := argmax(m.DocTopics(0))
	top := m.TopWords(hwTopic, 3)
	if len(top) != 3 {
		t.Fatalf("TopWords returned %d words", len(top))
	}
	hw := map[string]bool{"raid": true, "disk": true, "controller": true,
		"driver": true, "bios": true, "firmware": true}
	for _, w := range top {
		if !hw[w] {
			t.Errorf("top hardware-topic word %q is not hardware vocabulary", w)
		}
	}
	if m.TopWords(-1, 3) != nil || m.TopWords(99, 3) != nil {
		t.Error("out-of-range topic should return nil")
	}
}

func TestJSDivergence(t *testing.T) {
	p := []float64{1, 0}
	q := []float64{0, 1}
	if d := JSDivergence(p, q); math.Abs(d-1) > 1e-9 {
		t.Errorf("JSD of disjoint distributions = %v, want 1", d)
	}
	if d := JSDivergence(p, p); d != 0 {
		t.Errorf("JSD(p,p) = %v, want 0", d)
	}
	if d := JSDivergence(p, []float64{0.5}); d != 1 {
		t.Errorf("JSD of mismatched lengths = %v, want 1", d)
	}
	if s := Similarity(p, p); s != 1 {
		t.Errorf("Similarity(p,p) = %v, want 1", s)
	}
}

// Property: JSD is symmetric and within [0,1] for random distributions.
func TestJSDivergenceProperty(t *testing.T) {
	f := func(a, b [4]uint8) bool {
		p := normalize(a)
		q := normalize(b)
		d1 := JSDivergence(p, q)
		d2 := JSDivergence(q, p)
		return d1 >= 0 && d1 <= 1 && math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func normalize(a [4]uint8) []float64 {
	out := make([]float64, 4)
	var sum float64
	for i, v := range a {
		out[i] = float64(v) + 1
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

func BenchmarkTrain(b *testing.B) {
	docs := twoTopicCorpus(50)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Train(docs, Config{K: 4, Iterations: 20, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}
