// Package lda implements Latent Dirichlet Allocation with collapsed Gibbs
// sampling (Blei et al. 2003; Griffiths & Steyvers sampler). It is the
// topic-model baseline of the paper's evaluation (Table 4, Fig 11): posts
// are matched by the similarity of their inferred topic distributions, with
// no inverted index — which is also why it is the slowest method in
// Fig 11(c).
package lda

import (
	"fmt"
	"math"
	"math/rand"
)

// Model is a trained LDA topic model.
type Model struct {
	K     int     // number of topics
	Alpha float64 // document–topic Dirichlet prior
	Beta  float64 // topic–word Dirichlet prior

	vocab map[string]int
	words []string    // id → word
	nKW   [][]int     // topic × word counts
	nK    []int       // per-topic totals
	theta [][]float64 // per-training-document topic distributions
}

// Config bundles the training hyperparameters. Zero values select the
// customary defaults: Alpha = 50/K, Beta = 0.01, Iterations = 100.
type Config struct {
	K          int
	Alpha      float64
	Beta       float64
	Iterations int
	Seed       int64
}

func (c Config) withDefaults() Config {
	if c.K <= 0 {
		c.K = 10
	}
	if c.Alpha == 0 {
		c.Alpha = 50.0 / float64(c.K)
	}
	if c.Beta == 0 {
		c.Beta = 0.01
	}
	if c.Iterations <= 0 {
		c.Iterations = 100
	}
	return c
}

// Train fits a topic model to the tokenized documents by collapsed Gibbs
// sampling. Documents are slices of (lower-cased, stopword-filtered) terms.
// Training is deterministic for a fixed Config.
func Train(docs [][]string, cfg Config) (*Model, error) {
	cfg = cfg.withDefaults()
	if len(docs) == 0 {
		return nil, fmt.Errorf("lda: no documents")
	}
	m := &Model{
		K:     cfg.K,
		Alpha: cfg.Alpha,
		Beta:  cfg.Beta,
		vocab: make(map[string]int),
	}
	// Build the vocabulary and the word-id form of the corpus.
	corpus := make([][]int, len(docs))
	for d, doc := range docs {
		ids := make([]int, 0, len(doc))
		for _, w := range doc {
			id, ok := m.vocab[w]
			if !ok {
				id = len(m.words)
				m.vocab[w] = id
				m.words = append(m.words, w)
			}
			ids = append(ids, id)
		}
		corpus[d] = ids
	}
	v := len(m.words)
	if v == 0 {
		return nil, fmt.Errorf("lda: empty vocabulary")
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	k := cfg.K
	nDK := make([][]int, len(corpus))
	z := make([][]int, len(corpus))
	m.nKW = make([][]int, k)
	for t := range m.nKW {
		m.nKW[t] = make([]int, v)
	}
	m.nK = make([]int, k)
	for d, ids := range corpus {
		nDK[d] = make([]int, k)
		z[d] = make([]int, len(ids))
		for i, w := range ids {
			t := rng.Intn(k)
			z[d][i] = t
			nDK[d][t]++
			m.nKW[t][w]++
			m.nK[t]++
		}
	}

	vBeta := float64(v) * cfg.Beta
	probs := make([]float64, k)
	for iter := 0; iter < cfg.Iterations; iter++ {
		for d, ids := range corpus {
			for i, w := range ids {
				t := z[d][i]
				nDK[d][t]--
				m.nKW[t][w]--
				m.nK[t]--

				var total float64
				for tt := 0; tt < k; tt++ {
					p := (float64(nDK[d][tt]) + cfg.Alpha) *
						(float64(m.nKW[tt][w]) + cfg.Beta) /
						(float64(m.nK[tt]) + vBeta)
					probs[tt] = p
					total += p
				}
				r := rng.Float64() * total
				nt := 0
				for ; nt < k-1; nt++ {
					r -= probs[nt]
					if r <= 0 {
						break
					}
				}
				z[d][i] = nt
				nDK[d][nt]++
				m.nKW[nt][w]++
				m.nK[nt]++
			}
		}
	}

	// Final per-document topic distributions.
	m.theta = make([][]float64, len(corpus))
	for d := range corpus {
		m.theta[d] = distribution(nDK[d], cfg.Alpha, len(corpus[d]), k)
	}
	return m, nil
}

// distribution converts topic counts into a smoothed probability vector.
func distribution(counts []int, alpha float64, n, k int) []float64 {
	out := make([]float64, k)
	denom := float64(n) + alpha*float64(k)
	for t, c := range counts {
		out[t] = (float64(c) + alpha) / denom
	}
	return out
}

// DocTopics returns the topic distribution of training document d.
func (m *Model) DocTopics(d int) []float64 { return m.theta[d] }

// NumDocs returns the number of training documents.
func (m *Model) NumDocs() int { return len(m.theta) }

// VocabSize returns the vocabulary size.
func (m *Model) VocabSize() int { return len(m.words) }

// Infer estimates the topic distribution of an unseen document by folding
// it in with Gibbs sampling against the frozen topic–word counts.
func (m *Model) Infer(doc []string, iterations int, seed int64) []float64 {
	if iterations <= 0 {
		iterations = 30
	}
	var ids []int
	for _, w := range doc {
		if id, ok := m.vocab[w]; ok {
			ids = append(ids, id)
		}
	}
	k := m.K
	if len(ids) == 0 {
		// Unknown content: uniform distribution.
		out := make([]float64, k)
		for t := range out {
			out[t] = 1 / float64(k)
		}
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	nDK := make([]int, k)
	z := make([]int, len(ids))
	for i := range ids {
		t := rng.Intn(k)
		z[i] = t
		nDK[t]++
	}
	vBeta := float64(len(m.words)) * m.Beta
	probs := make([]float64, k)
	for iter := 0; iter < iterations; iter++ {
		for i, w := range ids {
			t := z[i]
			nDK[t]--
			var total float64
			for tt := 0; tt < k; tt++ {
				p := (float64(nDK[tt]) + m.Alpha) *
					(float64(m.nKW[tt][w]) + m.Beta) /
					(float64(m.nK[tt]) + vBeta)
				probs[tt] = p
				total += p
			}
			r := rng.Float64() * total
			nt := 0
			for ; nt < k-1; nt++ {
				r -= probs[nt]
				if r <= 0 {
					break
				}
			}
			z[i] = nt
			nDK[nt]++
		}
	}
	return distribution(nDK, m.Alpha, len(ids), k)
}

// TopWords returns the n highest-probability words of a topic, most
// probable first.
func (m *Model) TopWords(topic, n int) []string {
	if topic < 0 || topic >= m.K {
		return nil
	}
	type wc struct {
		id    int
		count int
	}
	best := make([]wc, 0, len(m.words))
	for id, c := range m.nKW[topic] {
		if c > 0 {
			best = append(best, wc{id, c})
		}
	}
	// Partial selection sort: n is small.
	if n > len(best) {
		n = len(best)
	}
	for i := 0; i < n; i++ {
		maxJ := i
		for j := i + 1; j < len(best); j++ {
			if best[j].count > best[maxJ].count ||
				(best[j].count == best[maxJ].count && best[j].id < best[maxJ].id) {
				maxJ = j
			}
		}
		best[i], best[maxJ] = best[maxJ], best[i]
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = m.words[best[i].id]
	}
	return out
}

// Similarity measures how alike two topic distributions are: 1 minus their
// Jensen–Shannon divergence (normalized to [0,1] with log base 2).
func Similarity(p, q []float64) float64 {
	return 1 - JSDivergence(p, q)
}

// JSDivergence computes the Jensen–Shannon divergence between two discrete
// distributions, in bits normalized to [0,1].
func JSDivergence(p, q []float64) float64 {
	if len(p) != len(q) {
		return 1
	}
	var js float64
	for i := range p {
		m := (p[i] + q[i]) / 2
		if p[i] > 0 && m > 0 {
			js += 0.5 * p[i] * math.Log2(p[i]/m)
		}
		if q[i] > 0 && m > 0 {
			js += 0.5 * q[i] * math.Log2(q[i]/m)
		}
	}
	if js < 0 {
		return 0
	}
	if js > 1 {
		return 1
	}
	return js
}
