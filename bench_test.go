// Package repro's root benchmarks regenerate every table and figure of the
// paper's evaluation (one benchmark per experiment; see DESIGN.md's
// experiment index). Run them with:
//
//	go test -bench=. -benchmem
//
// Each benchmark executes the corresponding experiment runner at a reduced
// scale suitable for timing; cmd/experiments produces the full reports.
// Benchmarks log the experiment output once (b.N loop re-runs the
// computation for timing).
package repro

import (
	"context"
	"fmt"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/forum"
	"repro/internal/lda"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/segment"
)

// benchOpt keeps per-iteration cost low enough for -bench runs while still
// exercising the full pipelines.
var benchOpt = experiments.Options{
	Scale:             200,
	Queries:           25,
	Annotators:        6,
	SegmentationPosts: 60,
	Sizes:             []int{200, 600},
	Table6Posts:       600,
	Seed:              42,
}

func BenchmarkTable2UserAgreement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Table2(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkCMvsTermSegmentation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.CMvsTerm(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig8BorderSelection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Fig8(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig9CoherenceFunctions(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Fig9(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable3Granularity(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Table3(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkTable4MeanPrecision(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Table4(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkFig11aSegmentation(b *testing.B) {
	// Total segmentation time over a collection — the Fig 11(a) quantity,
	// isolated: per-post Greedy border selection.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 300, Seed: 42})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	st := segment.Greedy{}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Segment(docs[i%len(docs)])
	}
}

func BenchmarkFig11bClustering(b *testing.B) {
	// Segment grouping time — the Fig 11(b) quantity: the full MR build
	// minus matching.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 300, Seed: 42})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.NewMR("bench", docs, match.MRConfig{Seed: 42})
	}
}

func BenchmarkMRBuild(b *testing.B) {
	// The MR offline build in isolation (segmentation → grouping →
	// indexing) with the paper's DBSCAN grouper at 600 posts — the unit of
	// work the Fig 11a/b sweeps repeat at increasing scale, and the
	// configuration that exercises the indexed region queries.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 600, Seed: 42})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		match.NewMR("bench", docs, match.MRConfig{Grouper: match.GroupDBSCAN, Seed: 42})
	}
}

func BenchmarkFig11cRetrievalIntent(b *testing.B) {
	benchRetrieval(b, core.IntentIntentMR)
}

func BenchmarkFig11cRetrievalIntentObserved(b *testing.B) {
	// The acceptance gate for the obs layer: the same hot path as
	// BenchmarkFig11cRetrievalIntent but with metrics recording enabled
	// (spans, per-query histograms, pool counters all live). The delta
	// between the two is the full observability tax on Fig 11(c); it
	// must stay within a few percent (see EXPERIMENTS.md).
	obs.Enable()
	defer obs.Disable()
	benchRetrieval(b, core.IntentIntentMR)
}

func BenchmarkFig11cRetrievalIntentTraced(b *testing.B) {
	// The worst-case tracing tax: every query carries a live obs.Trace
	// (the serve layer's SlowQuery=0 / rate-sampled configuration), so
	// each per-cluster index scan, merge, and top-k records a locked
	// event. Steady-state serving traces a small fraction of requests;
	// the delta vs BenchmarkFig11cRetrievalIntent bounds what a traced
	// one costs (see EXPERIMENTS.md).
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1000, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	tracer := obs.NewTracer(obs.TracerConfig{SlowQuery: 0})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := tracer.Start()
		p.RelatedContext(obs.WithTrace(context.Background(), tr), i%len(texts), 5)
		tracer.Finish(tr)
	}
}

func BenchmarkFig11cRetrievalFullText(b *testing.B) {
	benchRetrieval(b, core.FullText)
}

func BenchmarkFig11cRetrievalLDA(b *testing.B) {
	benchRetrieval(b, core.LDA)
}

// benchRetrieval measures the online top-k query path of a method — the
// Fig 11(c) quantity.
func benchRetrieval(b *testing.B, m core.Method) {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1000, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	cfg := core.Config{Method: m, Seed: 42}
	if m == core.LDA {
		cfg.LDA = lda.Config{K: 8, Iterations: 20}
	}
	p, err := core.Build(texts, cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Related(i%len(texts), 5)
	}
}

func BenchmarkConcurrentServe(b *testing.B) {
	// Mixed read/write serving — the online phase under load: GOMAXPROCS
	// goroutines issue Related queries with one Add folded in per 64
	// operations, the pattern the MR locking model is built for. Query
	// throughput should scale with GOMAXPROCS, and the writer share must
	// not stall readers beyond its own commit time.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1200, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 1000
	p, err := core.Build(texts[:base], core.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	extra := texts[base:]
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if i%64 == 63 {
				if _, err := p.Add(extra[i%len(extra)]); err != nil {
					b.Error(err)
					return
				}
			} else {
				p.Related(i%base, 5)
			}
			i++
		}
	})
}

func BenchmarkConcurrentServeReadOnly(b *testing.B) {
	// The same parallel serving load without writers — the upper bound the
	// mixed benchmark is compared against.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1000, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	p, err := core.Build(texts, core.Config{Seed: 42})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			p.Related(i%len(texts), 5)
			i++
		}
	})
}

func BenchmarkConcurrentServeSharded(b *testing.B) {
	// BenchmarkConcurrentServe's mixed read/write load over the sharded
	// serving topology: identical rankings (the shard package proves it),
	// different contention profile. Each Add takes only its owning
	// shard's write lock, so the stall a commit imposes on concurrent
	// queries shrinks with the shard count, and the scatter legs of one
	// query spread across cores — on a multi-core host mixed throughput
	// improves monotonically with the shard count until the scatter
	// fan-out saturates the machine. On a single-core host (GOMAXPROCS=1
	// runs the legs inline and serializes readers with the writer anyway)
	// the same numbers instead isolate the scatter-merge tax per added
	// shard; EXPERIMENTS.md records both readings.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1200, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 1000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			p, err := core.Build(texts[:base], core.Config{Seed: 42, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			extra := texts[base:]
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%64 == 63 {
						if _, err := p.Add(extra[i%len(extra)]); err != nil {
							b.Error(err)
							return
						}
					} else {
						p.Related(i%base, 5)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkConcurrentServeShardedWriteHeavy(b *testing.B) {
	// The write-contention axis of the shard sweep: one Add per 8
	// operations instead of per 64, the regime where the unsharded
	// index's single write lock drains readers often enough to matter.
	// Sharding confines each commit to 1/N of the corpus, so the gap
	// between this benchmark and its read-mostly sibling narrows as the
	// shard count grows (EXPERIMENTS.md tabulates both).
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1600, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	const base = 1000
	for _, shards := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards-%d", shards), func(b *testing.B) {
			p, err := core.Build(texts[:base], core.Config{Seed: 42, Shards: shards})
			if err != nil {
				b.Fatal(err)
			}
			extra := texts[base:]
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					if i%8 == 7 {
						if _, err := p.Add(extra[i%len(extra)]); err != nil {
							b.Error(err)
							return
						}
					} else {
						p.Related(i%base, 5)
					}
					i++
				}
			})
		})
	}
}

func BenchmarkTable6StackOverflowScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if out, _ := experiments.Table6(benchOpt); out == "" {
			b.Fatal("empty report")
		}
	}
}

func BenchmarkPipelineBuild1k(b *testing.B) {
	// End-to-end offline build at 1k posts — the unit the Fig 11 sweeps
	// scale up.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 1000, Seed: 42})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Build(texts, core.Config{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDBSCANvsKMeans(b *testing.B) {
	// The grouping ablation DESIGN.md calls out: DBSCAN (paper) vs k-means
	// (pipeline default) on the same prepared corpus.
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: 300, Seed: 42})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	b.Run("kmeans", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.NewMR("bench", docs, match.MRConfig{Grouper: match.GroupKMeans, Seed: 42})
		}
	})
	b.Run("dbscan", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			match.NewMR("bench", docs, match.MRConfig{Grouper: match.GroupDBSCAN, Seed: 42})
		}
	})
}
