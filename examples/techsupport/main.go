// Techsupport: generate an HP-forum-like corpus, build every matching
// method over it, and compare their precision on the generator's relevance
// ground truth — a miniature of the paper's Table 4 on one domain.
//
// Run with: go run ./examples/techsupport
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/eval"
	"repro/internal/forum"
	"repro/internal/lda"
)

func main() {
	const posts = 300
	const queries = 40

	generated := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: posts, Seed: 11})
	texts := make([]string, len(generated))
	for i, p := range generated {
		texts[i] = p.Text
	}
	fmt.Printf("generated %d tech-support posts over %d topics\n\n", posts, forum.NumTopics(forum.TechSupport))

	methods := []core.Method{core.FullText, core.LDA, core.ContentMR, core.SentIntentMR, core.IntentIntentMR}
	for _, m := range methods {
		cfg := core.Config{Method: m, Seed: 11}
		if m == core.LDA {
			cfg.LDA = lda.Config{K: 8, Iterations: 50}
		}
		pipeline, err := core.Build(texts, cfg)
		if err != nil {
			log.Fatal(err)
		}
		var perQuery []float64
		for q := 0; q < queries; q++ {
			relevant := forum.RelevantSet(generated, generated[q])
			ids := core.TopIDs(pipeline.Related(q, 5))
			perQuery = append(perQuery, eval.Precision(ids, relevant))
		}
		fmt.Printf("%-16s mean precision %.3f  (zero-result queries: %.0f%%)\n",
			pipeline.Method(), eval.MeanPrecision(perQuery), eval.ZeroFraction(perQuery)*100)
	}

	// Peek inside the intention pipeline: what do its clusters look like?
	pipeline, err := core.Build(texts, core.Config{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	before, after := pipeline.SegmentCounts()
	fmt.Printf("\nsegment granularity (%% of posts, before grouping → after refinement):\n")
	distB := core.GranularityDistribution(before)
	distA := core.GranularityDistribution(after)
	for _, bucket := range core.GranularityBuckets() {
		fmt.Printf("  %-4s %5.1f%% → %5.1f%%\n", bucket, distB[bucket], distA[bucket])
	}
}
