// Stackoverflow: the scaling scenario — build the pipeline over a larger
// programming corpus, report where offline time goes (the paper's Table 6
// quantities), and demonstrate that online retrieval stays in the
// sub-millisecond range.
//
// Run with: go run ./examples/stackoverflow [-n 20000]
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"repro/internal/core"
	"repro/internal/forum"
)

func main() {
	n := flag.Int("n", 5000, "corpus size (the paper's StackOverflow dump had 1.5M root posts)")
	flag.Parse()

	fmt.Printf("generating %d programming posts...\n", *n)
	posts := forum.Generate(forum.Config{Domain: forum.Programming, NumPosts: *n, Seed: 5})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}

	start := time.Now()
	pipeline, err := core.Build(texts, core.Config{Seed: 5})
	if err != nil {
		log.Fatal(err)
	}
	buildTime := time.Since(start)
	st := pipeline.Stats()

	fmt.Printf("offline build: %v total\n", buildTime.Round(time.Millisecond))
	fmt.Printf("  preprocess    %v\n", st.Preprocess.Round(time.Millisecond))
	fmt.Printf("  segmentation  %v  (%v avg per post)\n",
		st.Segmentation.Round(time.Millisecond), (st.Segmentation / time.Duration(*n)).Round(time.Microsecond))
	fmt.Printf("  grouping      %v  (%d segments → %d clusters)\n",
		st.Grouping.Round(time.Millisecond), st.NumSegments, st.NumClusters)
	fmt.Printf("  indexing      %v\n", st.Indexing.Round(time.Millisecond))

	// Online phase: average retrieval latency over a query sample.
	const queries = 200
	start = time.Now()
	found := 0
	for q := 0; q < queries && q < *n; q++ {
		if len(pipeline.Related(q, 5)) > 0 {
			found++
		}
	}
	avg := time.Since(start) / time.Duration(min(queries, *n))
	fmt.Printf("online: avg retrieval %v per query (%d/%d queries returned results)\n",
		avg.Round(time.Microsecond), found, min(queries, *n))

	// One concrete retrieval.
	res := pipeline.Related(0, 3)
	fmt.Printf("\nposts related to post 0 (%.60s...):\n", texts[0])
	for rank, r := range res {
		fmt.Printf("  %d. post %-5d score %.3f  %.60s...\n", rank+1, r.DocID, r.Score, texts[r.DocID])
	}
}
