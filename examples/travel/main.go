// Travel: the hotel-review scenario from the paper's evaluation — find
// reviews related to a reference review, and show why whole-post matching
// confuses reviews of the same hotel type that serve different needs.
//
// Run with: go run ./examples/travel
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/core"
	"repro/internal/forum"
)

func main() {
	posts := forum.Generate(forum.Config{Domain: forum.Travel, NumPosts: 250, Seed: 23})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}

	intent, err := core.Build(texts, core.Config{Seed: 23})
	if err != nil {
		log.Fatal(err)
	}
	full, err := core.Build(texts, core.Config{Method: core.FullText, Seed: 23})
	if err != nil {
		log.Fatal(err)
	}

	// Pick a query and compare what the two methods retrieve.
	const q = 3
	relevant := forum.RelevantSet(posts, posts[q])
	fmt.Printf("query review (topic %d, request variant %d):\n  %s\n\n",
		posts[q].Topic, posts[q].Variant, wrap(posts[q].Text, 76))
	for _, p := range []*core.Pipeline{full, intent} {
		fmt.Printf("%s top-5:\n", p.Method())
		hits := 0
		for rank, r := range p.Related(q, 5) {
			tag := "different need"
			if relevant[r.DocID] {
				tag = "RELATED"
				hits++
			} else if posts[r.DocID].Topic != posts[q].Topic {
				tag = "different topic"
			}
			fmt.Printf("  %d. post %-4d [%s] topic %d variant %d\n",
				rank+1, r.DocID, tag, posts[r.DocID].Topic, posts[r.DocID].Variant)
		}
		fmt.Printf("  → %d/5 truly related\n\n", hits)
	}
}

// wrap folds text to a maximum line width for terminal display.
func wrap(s string, width int) string {
	words := strings.Fields(s)
	var b strings.Builder
	line := 0
	for _, w := range words {
		if line+len(w)+1 > width {
			b.WriteString("\n  ")
			line = 0
		} else if line > 0 {
			b.WriteByte(' ')
			line++
		}
		b.WriteString(w)
		line += len(w)
	}
	return b.String()
}
