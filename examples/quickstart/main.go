// Quickstart: build the intention-based retrieval pipeline over a handful
// of posts and find the ones related to a reference post.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
)

func main() {
	// The four motivating posts of the paper's Fig 1 plus two fillers.
	// Doc A (index 0) asks whether partial disk use degrades performance;
	// Doc B (index 1) shares A's vocabulary (HP, RAID, drive) but asks a
	// different question; Doc C (index 2) shares little vocabulary with A
	// but asks about the same underlying concern; Doc D (index 3) is
	// unrelated.
	posts := []string{
		// Doc A
		"I have an HP system with a RAID 0 controller and 4 disks in form of " +
			"a JBOD. I would like to install Hadoop with a replication 4 HDFS and " +
			"only 320GB of disk space used from every disc. Do you know whether it " +
			"would perform ok or whether the partial use of the disk would degrade " +
			"performance. Friends have downloaded the Cloudera distribution but it " +
			"didn't work. It stopped since the web site was suggesting to have 1TB " +
			"disks. I am asking because I do not want to install Linux to find that " +
			"my HW configuration is not right.",
		// Doc B
		"My boss gave me yesterday an HP Pavilion computer with Intel Matrix " +
			"Storage System, a 320GB drive and Linux pre-installed. I am thinking " +
			"to add an extra drive using a RAID 0 or 1. Can I do it without having " +
			"to rebuild the entire system? I have already looked at the HP official " +
			"web site for how to use a JBOD. But I have not found anything related to it.",
		// Doc C
		"Extra RAID drives seem to be the solution to my problem but does " +
			"adding RAID drives require a reformat and rebuild of the system to " +
			"improve performance? Do you know whether the array would perform ok " +
			"afterwards or whether it would degrade under load?",
		// Doc D
		"My HP Pavilion stops working after 15 min of activity. I called our " +
			"technical department but no luck. Despite the many calls, I did not " +
			"manage to find a person with adequate knowledge to find out what is " +
			"wrong. At the end I had the brilliant idea to move it to a cooler " +
			"place and voila. No more problems.",
		// Fillers so IDF statistics have something to chew on.
		"The hotel room faced the pool. Breakfast offered fresh fruit every " +
			"morning. Would you recommend the place for families?",
		"I am building a REST service in Go. The handler panics on a nil " +
			"pointer. How should I guard the mapper against missing values?",
	}

	pipeline, err := core.Build(posts, core.Config{})
	if err != nil {
		log.Fatal(err)
	}

	stats := pipeline.Stats()
	fmt.Printf("built %s: %d posts, %d segments, %d intention clusters\n\n",
		pipeline.Method(), stats.NumDocs, stats.NumSegments, stats.NumClusters)

	fmt.Println("posts related to Doc A (the RAID performance question):")
	for rank, r := range pipeline.Related(0, 3) {
		fmt.Printf("  %d. post %d (score %.3f): %.70s...\n", rank+1, r.DocID, r.Score, posts[r.DocID])
	}

	// Show how Doc A was segmented.
	doc := pipeline.Doc(0)
	fmt.Printf("\nDoc A has %d sentence units.\n", doc.Len())
}
