// Command gencorpus emits a synthetic forum corpus as JSON lines, one post
// per line, with its ground truth (segments, intentions, scenario key).
//
// Usage:
//
//	gencorpus -domain tech -n 1000 -seed 7 > corpus.jsonl
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"repro/internal/forum"
)

// record is the JSON form of one generated post.
type record struct {
	ID       int             `json:"id"`
	Domain   string          `json:"domain"`
	Topic    int             `json:"topic"`
	Variant  int             `json:"variant"`
	Text     string          `json:"text"`
	Segments []segmentRecord `json:"segments"`
}

type segmentRecord struct {
	Intention string `json:"intention"`
	Start     int    `json:"start"`
	End       int    `json:"end"`
}

func main() {
	domain := flag.String("domain", "tech", "domain: tech, travel, prog, or health")
	n := flag.Int("n", 100, "number of posts")
	seed := flag.Int64("seed", 1, "random seed")
	flag.Parse()

	var d forum.Domain
	switch *domain {
	case "tech":
		d = forum.TechSupport
	case "travel":
		d = forum.Travel
	case "prog", "programming":
		d = forum.Programming
	case "health":
		d = forum.Health
	default:
		fmt.Fprintf(os.Stderr, "gencorpus: unknown domain %q (tech, travel, prog, health)\n", *domain)
		os.Exit(2)
	}

	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	enc := json.NewEncoder(w)
	for i := 0; i < *n; i++ {
		p := forum.GeneratePost(d, i, *seed)
		rec := record{
			ID: p.ID, Domain: p.Domain.String(), Topic: p.Topic,
			Variant: p.Variant, Text: p.Text,
		}
		for _, s := range p.Segments {
			rec.Segments = append(rec.Segments, segmentRecord{
				Intention: s.Intention, Start: s.Start, End: s.End,
			})
		}
		if err := enc.Encode(rec); err != nil {
			fmt.Fprintln(os.Stderr, "gencorpus:", err)
			os.Exit(1)
		}
	}
}
