// Command experiments regenerates the paper's tables and figures on the
// synthetic corpora.
//
// Usage:
//
//	experiments -exp table4                 # one experiment
//	experiments -exp all -scale 1000        # everything, bigger corpora
//	experiments -exp fig11 -sizes 1000,10000,100000
//	experiments -exp table6 -table6 200000  # StackOverflow-scale run
//
// Experiment ids: table2 fig7 cmvsterm fig8 fig9 table3 fig3 table4 fig10
// table5 fig11 table6 ablations all.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/experiments"
	"repro/internal/obs"
)

func main() {
	exp := flag.String("exp", "all", "experiment id to run ("+strings.Join(experiments.Names(), ", ")+")")
	scale := flag.Int("scale", 0, "per-domain corpus size for effectiveness experiments (default 300)")
	queries := flag.Int("queries", 0, "reference posts evaluated per dataset (default 60)")
	annotators := flag.Int("annotators", 0, "simulated annotator pool size (default 12)")
	segPosts := flag.Int("segposts", 0, "posts in the segmentation study sample (default 200)")
	sizes := flag.String("sizes", "", "comma-separated Fig 11 collection sizes (default 1000,10000,100000)")
	table6 := flag.Int("table6", 0, "Table 6 collection size (default 20000; paper used 1.5M)")
	seed := flag.Int64("seed", 0, "random seed (default 42)")
	workers := flag.Int("workers", 0, "offline-build parallelism (0 = GOMAXPROCS; results identical for any count)")
	obsReport := flag.Bool("obs", true, "record obs metrics during the run and append the snapshot to the report")
	flag.Parse()
	if *obsReport {
		obs.Enable()
	}

	opt := experiments.Options{
		Scale:             *scale,
		Queries:           *queries,
		Annotators:        *annotators,
		SegmentationPosts: *segPosts,
		Table6Posts:       *table6,
		Seed:              *seed,
		Workers:           *workers,
	}
	if *sizes != "" {
		for _, part := range strings.Split(*sizes, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fmt.Fprintf(os.Stderr, "experiments: bad -sizes value %q: %v\n", part, err)
				os.Exit(2)
			}
			opt.Sizes = append(opt.Sizes, n)
		}
	}

	out, err := experiments.Run(*exp, opt)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	fmt.Println(out)

	if *obsReport {
		// The same per-phase spans cmd/serve exposes on /metrics, here as
		// an end-of-run digest: build.segment is Fig 11(a), build.vectorize
		// + build.cluster + build.refine are Fig 11(b), match.query /
		// core.related are Fig 11(c). See EXPERIMENTS.md, "obs span names".
		fmt.Println("## obs snapshot")
		for _, line := range obs.Default.Snapshot().SummaryLines() {
			fmt.Println(line)
		}
	}
}
