// Command segmentview shows how the pipeline sees one post: its sentence
// units, the communication-means track of each sentence (the bar charts of
// the paper's Fig 2), and the borders each segmentation strategy selects.
//
// Usage:
//
//	segmentview < post.txt
//	echo "I have an HP system. ... " | segmentview
package main

import (
	"fmt"
	"io"
	"os"
	"strings"

	"repro/internal/cm"
	"repro/internal/segment"
)

func main() {
	raw, err := io.ReadAll(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "segmentview:", err)
		os.Exit(1)
	}
	text := strings.TrimSpace(string(raw))
	if text == "" {
		fmt.Fprintln(os.Stderr, "segmentview: empty input; pipe a forum post on stdin")
		os.Exit(2)
	}
	d := segment.NewDoc(text)
	if d.Len() == 0 {
		fmt.Fprintln(os.Stderr, "segmentview: no sentences found")
		os.Exit(2)
	}

	fmt.Printf("%d sentence units\n\n", d.Len())
	fmt.Println("CM tracks (dominant categorical value per communication mean):")
	fmt.Printf("%-4s %-8s %-7s %-9s %-8s  %s\n", "#", "tense", "subj", "style", "status", "sentence")
	for i := 0; i < d.Len(); i++ {
		a := d.Range(i, i+1)
		fmt.Printf("%-4d %-8s %-7s %-9s %-8s  %s\n", i,
			dominant(a, cm.Tense), dominant(a, cm.Subject),
			dominant(a, cm.Style), dominant(a, cm.Status),
			truncate(d.Sents[i].Text, 60))
	}

	fmt.Println("\nSegmentations (borders are sentence indices):")
	strategies := []segment.Strategy{
		segment.Greedy{}, segment.Tile{}, segment.StepbyStep{},
		segment.TopDown{}, segment.TextTiling{},
	}
	for _, st := range strategies {
		seg := st.Segment(d)
		fmt.Printf("  %-12s %v  (%d segments)\n", st.Name(), seg.Borders, seg.NumSegments())
	}

	fmt.Println("\nGreedy segments:")
	for i, r := range (segment.Greedy{}).Segment(d).Segments() {
		var parts []string
		for s := r[0]; s < r[1]; s++ {
			parts = append(parts, d.Sents[s].Text)
		}
		fmt.Printf("  [%d] %s\n", i, strings.Join(parts, " "))
	}
}

// dominant names the most frequent categorical value of a mean in the
// annotation, or "-" when the mean is absent.
func dominant(a cm.Annotation, m cm.Mean) string {
	lo, hi := cm.FeaturesOf(m)
	best, bestCount := -1, 0.0
	for f := lo; f < hi; f++ {
		if a.Counts[f] > bestCount {
			best, bestCount = f, a.Counts[f]
		}
	}
	if best < 0 {
		return "-"
	}
	return strings.ToLower(cm.Feature(best).String())
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
