// Command persistbench measures the persistence layer: for a range of
// synthetic corpus sizes it builds the pipeline once, writes the
// snapshot in both on-disk layouts — the legacy gob stream and the
// compact section format — and reports file size, load wall-time
// (median over -runs), and post-load heap for each, plus the
// compact/gob ratios. scripts/bench.sh merges the JSON into the
// per-PR BENCH snapshot.
//
// Usage:
//
//	persistbench                          # sizes 1000,10000,100000
//	persistbench -sizes 1000 -runs 3      # quick smoke
//	persistbench -out persist.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/forum"
)

// layoutReport is one (corpus size, layout) measurement.
type layoutReport struct {
	FileBytes int64 `json:"file_bytes"`
	WriteNS   int64 `json:"write_ns"`
	// LoadNS is the median wall-time of core.ReadPipeline over -runs
	// loads — the restart-latency figure the compact layout targets.
	LoadNS int64 `json:"load_ns"`
	// HeapBytes is the live-heap delta attributable to one loaded
	// pipeline (GC-settled before and after).
	HeapBytes int64 `json:"heap_bytes"`
}

type sizeReport struct {
	Docs             int          `json:"docs"`
	BuildNS          int64        `json:"build_ns"`
	Gob              layoutReport `json:"gob"`
	Compact          layoutReport `json:"compact"`
	CompactSizeRatio float64      `json:"compact_size_ratio"` // compact bytes / gob bytes
	CompactLoadRatio float64      `json:"compact_load_ratio"` // compact load ns / gob load ns
}

func main() {
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated corpus sizes")
	runs := flag.Int("runs", 5, "load repetitions per layout (median reported)")
	domain := flag.String("domain", "tech", "synthetic domain")
	seed := flag.Int64("seed", 42, "corpus seed")
	out := flag.String("out", "", "output JSON file (default stdout)")
	flag.Parse()

	dom, err := parseDomain(*domain)
	if err != nil {
		fatal(err)
	}

	report := struct {
		Persistence map[string]sizeReport `json:"persistence"`
	}{Persistence: map[string]sizeReport{}}

	for _, field := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(field))
		if err != nil || n < 1 {
			fatal(fmt.Errorf("bad size %q", field))
		}
		sr, err := measure(dom, n, *seed, *runs)
		if err != nil {
			fatal(err)
		}
		report.Persistence[fmt.Sprintf("docs_%d", n)] = sr
		fmt.Fprintf(os.Stderr, "%7d docs: gob %s → compact %s (%.2fx), load %s → %s (%.2fx), heap %s → %s\n",
			n, human(sr.Gob.FileBytes), human(sr.Compact.FileBytes), sr.CompactSizeRatio,
			time.Duration(sr.Gob.LoadNS).Round(time.Microsecond), time.Duration(sr.Compact.LoadNS).Round(time.Microsecond),
			sr.CompactLoadRatio, human(sr.Gob.HeapBytes), human(sr.Compact.HeapBytes))
	}

	data, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fatal(err)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fatal(err)
	}
}

func measure(dom forum.Domain, n int, seed int64, runs int) (sizeReport, error) {
	posts := forum.Generate(forum.Config{Domain: dom, NumPosts: n, Seed: seed})
	texts := make([]string, len(posts))
	for i, p := range posts {
		texts[i] = p.Text
	}
	buildStart := time.Now()
	p, err := core.Build(texts, core.Config{Seed: seed})
	if err != nil {
		return sizeReport{}, err
	}
	sr := sizeReport{Docs: n, BuildNS: time.Since(buildStart).Nanoseconds()}

	sr.Gob, err = measureLayout(p.WriteLegacyTo, runs)
	if err != nil {
		return sr, fmt.Errorf("gob layout at %d docs: %w", n, err)
	}
	sr.Compact, err = measureLayout(p.WriteTo, runs)
	if err != nil {
		return sr, fmt.Errorf("compact layout at %d docs: %w", n, err)
	}
	sr.CompactSizeRatio = ratio(sr.Compact.FileBytes, sr.Gob.FileBytes)
	sr.CompactLoadRatio = ratio(sr.Compact.LoadNS, sr.Gob.LoadNS)
	return sr, nil
}

func measureLayout(write func(w io.Writer) (int64, error), runs int) (layoutReport, error) {
	var lr layoutReport
	var buf bytes.Buffer
	writeStart := time.Now()
	if _, err := write(&buf); err != nil {
		return lr, err
	}
	lr.WriteNS = time.Since(writeStart).Nanoseconds()
	lr.FileBytes = int64(buf.Len())

	times := make([]int64, 0, runs)
	for i := 0; i < runs; i++ {
		start := time.Now()
		if _, err := core.ReadPipeline(bytes.NewReader(buf.Bytes())); err != nil {
			return lr, err
		}
		times = append(times, time.Since(start).Nanoseconds())
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	lr.LoadNS = times[len(times)/2]

	// Post-load heap: GC-settled live bytes before vs after one load
	// that is kept alive across the second measurement.
	var before, after runtime.MemStats
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&before)
	loaded, err := core.ReadPipeline(bytes.NewReader(buf.Bytes()))
	if err != nil {
		return lr, err
	}
	runtime.GC()
	runtime.GC()
	runtime.ReadMemStats(&after)
	lr.HeapBytes = int64(after.HeapAlloc) - int64(before.HeapAlloc)
	runtime.KeepAlive(loaded)
	// buf's last use above is the final ReadPipeline call, so without
	// this the after-load GC frees the serialized file and the delta
	// reads loadedSize - fileSize. Keeping buf live across both
	// measurements cancels it out of the subtraction.
	runtime.KeepAlive(&buf)
	return lr, nil
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

func human(n int64) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.1fMB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKB", float64(n)/(1<<10))
	}
	return fmt.Sprintf("%dB", n)
}

func parseDomain(name string) (forum.Domain, error) {
	switch name {
	case "tech":
		return forum.TechSupport, nil
	case "travel":
		return forum.Travel, nil
	case "prog", "programming":
		return forum.Programming, nil
	case "health":
		return forum.Health, nil
	}
	return 0, fmt.Errorf("unknown domain %q (tech, travel, prog, health)", name)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "persistbench:", err)
	os.Exit(1)
}
