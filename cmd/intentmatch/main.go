// Command intentmatch builds the intention-based retrieval pipeline over a
// JSON-lines corpus (as produced by gencorpus, or any file with one
// {"id":..,"text":..} object per line) and prints the top-k related posts
// for one or more reference posts.
//
// Usage:
//
//	gencorpus -domain tech -n 500 | intentmatch -query 0 -k 5
//	intentmatch -corpus corpus.jsonl -query 0,7,42 -k 5 -method fulltext
//	intentmatch -corpus corpus.jsonl -query 0 -explain      # Eq 7–9 breakdown
//	intentmatch -corpus corpus.jsonl -save built.idx        # offline build
//	intentmatch -load built.idx -query 0,7 -k 5             # online serving
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/lda"
	"repro/internal/match"
	"repro/internal/par"
)

type record struct {
	ID   int    `json:"id"`
	Text string `json:"text"`
}

func main() {
	corpus := flag.String("corpus", "-", "JSON-lines corpus file (default stdin)")
	query := flag.String("query", "0", "comma-separated reference post ids")
	k := flag.Int("k", 5, "number of related posts to return")
	method := flag.String("method", "intent", "matching method: intent, fulltext, lda, content, sent")
	seed := flag.Int64("seed", 1, "random seed")
	save := flag.String("save", "", "write the built pipeline to this file and exit")
	saveFormat := flag.String("save-format", "compact",
		"snapshot layout for -save: compact (section format) or gob (legacy; for migration checks — loaders read both)")
	saveShards := flag.Int("save-shards", 0,
		"with -save: partition the build into this many shards and write a shard directory (servable whole with `serve -load`, or piecewise with `serve -shard-role shard -own N`)")
	load := flag.String("load", "", "load a previously saved pipeline instead of building")
	explain := flag.Bool("explain", false,
		"print each result's Eq 7–9 score decomposition (per-cluster contributions and top terms)")
	flag.Parse()

	if *load != "" {
		servePipeline(*load, *query, *k, *explain)
		return
	}

	var in io.Reader = os.Stdin
	if *corpus != "-" {
		f, err := os.Open(*corpus)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		in = f
	}

	var texts []string
	sc := bufio.NewScanner(in)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var rec record
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			fatal(fmt.Errorf("parsing corpus line %d: %w", len(texts)+1, err))
		}
		texts = append(texts, rec.Text)
	}
	if err := sc.Err(); err != nil {
		fatal(err)
	}
	if len(texts) == 0 {
		fatal(fmt.Errorf("empty corpus"))
	}

	cfg := core.Config{Seed: *seed, Shards: *saveShards}
	switch *method {
	case "intent":
		cfg.Method = core.IntentIntentMR
	case "fulltext":
		cfg.Method = core.FullText
	case "lda":
		cfg.Method = core.LDA
		cfg.LDA = lda.Config{K: 8, Iterations: 60}
	case "content":
		cfg.Method = core.ContentMR
	case "sent":
		cfg.Method = core.SentIntentMR
	default:
		fatal(fmt.Errorf("unknown method %q", *method))
	}

	p, err := core.Build(texts, cfg)
	if err != nil {
		fatal(err)
	}
	st := p.Stats()
	fmt.Printf("built %s over %d posts (%d segments, %d clusters)\n",
		p.Method(), st.NumDocs, st.NumSegments, st.NumClusters)

	if *save != "" && *saveShards > 0 {
		if err := p.WriteShardDir(*save); err != nil {
			fatal(err)
		}
		fmt.Printf("saved %d-shard directory to %s\n", *saveShards, *save)
		return
	}
	if *save != "" {
		f, err := os.Create(*save)
		if err != nil {
			fatal(err)
		}
		var n int64
		switch *saveFormat {
		case "compact":
			n, err = p.WriteTo(f)
		case "gob":
			n, err = p.WriteLegacyTo(f)
		default:
			fatal(fmt.Errorf("unknown -save-format %q (compact, gob)", *saveFormat))
		}
		if err == nil {
			err = f.Close()
		}
		if err != nil {
			fatal(err)
		}
		fmt.Printf("saved pipeline to %s (%d bytes, %s)\n", *save, n, *saveFormat)
		return
	}

	if *explain {
		explainQueries(p, *query, *k, texts)
		return
	}
	answerQueries(p, *query, *k, texts)
}

// answerQueries serves the comma-separated reference ids concurrently —
// the pipeline's online phase is safe for parallel queries — and prints
// the result lists in input order. texts may be nil (loaded pipelines
// keep segment terms, not post texts); then only ids and scores print.
func answerQueries(p *core.Pipeline, query string, k int, texts []string) {
	ids := parseQueryIDs(query, p.Stats().NumDocs)
	results := make([][]core.Result, len(ids))
	par.Do(len(ids), 0, func(i int) { results[i] = p.Related(ids[i], k) })
	for i, q := range ids {
		if texts != nil {
			fmt.Printf("\nquery %d: %s\n", q, truncate(texts[q], 90))
		} else {
			fmt.Printf("query %d:\n", q)
		}
		for rank, r := range results[i] {
			if texts != nil {
				fmt.Printf("  %d. post %-5d score %.4f  %s\n", rank+1, r.DocID, r.Score, truncate(texts[r.DocID], 70))
			} else {
				fmt.Printf("  %d. post %-5d score %.4f\n", rank+1, r.DocID, r.Score)
			}
		}
	}
}

// explainQueries is answerQueries with the Eq 7–9 score decomposition:
// each result prints its per-intention-cluster contributions and, for
// every cluster, the largest term-level tf·weight·idf products. The
// cluster contributions sum to the served score (the -explain
// acceptance property the serve layer also exposes).
func explainQueries(p *core.Pipeline, query string, k int, texts []string) {
	const topTerms = 8
	ids := parseQueryIDs(query, p.Stats().NumDocs)
	for _, q := range ids {
		if texts != nil {
			fmt.Printf("\nquery %d: %s\n", q, truncate(texts[q], 90))
		} else {
			fmt.Printf("query %d:\n", q)
		}
		results, exps, err := p.RelatedExplained(q, k)
		if err != nil {
			fatal(err)
		}
		for rank, r := range results {
			if texts != nil {
				fmt.Printf("  %d. post %-5d score %.4f  %s\n", rank+1, r.DocID, r.Score, truncate(texts[r.DocID], 70))
			} else {
				fmt.Printf("  %d. post %-5d score %.4f\n", rank+1, r.DocID, r.Score)
			}
			for _, c := range exps[rank].Clusters {
				terms := append([]match.TermContribution(nil), c.Terms...)
				sort.Slice(terms, func(a, b int) bool {
					return math.Abs(terms[a].Contribution) > math.Abs(terms[b].Contribution)
				})
				shown := terms
				if len(shown) > topTerms {
					shown = shown[:topTerms]
				}
				parts := make([]string, len(shown))
				for i, tc := range shown {
					parts[i] = fmt.Sprintf("%s %.4f", tc.Term, tc.Contribution)
				}
				line := strings.Join(parts, ", ")
				if n := len(terms) - len(shown); n > 0 {
					line += fmt.Sprintf(", … (+%d terms)", n)
				}
				fmt.Printf("     cluster %-3d %.4f  [%s]\n", c.Cluster, c.Score, line)
			}
		}
	}
}

// parseQueryIDs parses the -query flag's comma-separated reference ids,
// validating each against the collection size.
func parseQueryIDs(query string, numDocs int) []int {
	parts := strings.Split(query, ",")
	ids := make([]int, len(parts))
	for i, part := range parts {
		q, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || q < 0 || q >= numDocs {
			fatal(fmt.Errorf("bad query id %q (corpus has %d posts)", part, numDocs))
		}
		ids[i] = q
	}
	return ids
}

// servePipeline answers queries from a previously saved pipeline. Saved
// pipelines keep segment terms, not post texts, so results list ids and
// scores only.
func servePipeline(path, query string, k int, explain bool) {
	f, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	p, err := core.ReadPipeline(bufio.NewReader(f))
	if err != nil {
		fatal(err)
	}
	st := p.Stats()
	fmt.Printf("loaded %s: %d posts, %d clusters\n", p.Method(), st.NumDocs, st.NumClusters)
	if explain {
		explainQueries(p, query, k, nil)
		return
	}
	answerQueries(p, query, k, nil)
}

func truncate(s string, n int) string {
	s = strings.ReplaceAll(s, "\n", " ")
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "intentmatch:", err)
	os.Exit(1)
}
