// Command serve runs the related-post pipeline as a long-running HTTP
// service: it builds the offline phases over a corpus at startup, then
// answers online queries and ingests new posts concurrently, with the
// obs metrics registry and pprof exposed for operations. See the
// "Serving over HTTP" section of README.md for the endpoint reference
// and a metrics glossary.
//
// Usage:
//
//	serve -addr :8080 -domain tech -n 1000 -seed 42
//	serve -corpus corpus.jsonl                 # cmd/gencorpus output
//	curl -s localhost:8080/related -d '{"doc_id": 3, "k": 5}'
//	curl -s localhost:8080/metrics | jq .spans
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/forum"
	"repro/internal/obs"
	"repro/internal/serve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	corpus := flag.String("corpus", "", "JSONL corpus file (cmd/gencorpus output); empty generates synthetically")
	domain := flag.String("domain", "tech", "synthetic domain: tech, travel, prog, or health")
	n := flag.Int("n", 1000, "synthetic corpus size")
	seed := flag.Int64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "offline-build parallelism (0 = GOMAXPROCS)")
	flag.Parse()

	// Enable metrics before the build so the build.* spans of this
	// process's offline phase are already on /metrics at first scrape.
	obs.Enable()

	texts, err := loadCorpus(*corpus, *domain, *n, *seed)
	if err != nil {
		log.Fatalf("serve: %v", err)
	}
	log.Printf("building pipeline over %d posts...", len(texts))
	start := time.Now()
	p, err := core.Build(texts, core.Config{Seed: *seed, Workers: *workers})
	if err != nil {
		log.Fatalf("serve: build: %v", err)
	}
	st := p.Stats()
	log.Printf("built in %v: %d docs, %d segments, %d clusters (segment %v, group %v, index %v)",
		time.Since(start).Round(time.Millisecond), st.NumDocs, st.NumSegments, st.NumClusters,
		st.Segmentation.Round(time.Millisecond), st.Grouping.Round(time.Millisecond),
		st.Indexing.Round(time.Millisecond))

	srv := &http.Server{
		Addr:              *addr,
		Handler:           serve.New(p).Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		log.Printf("serving on %s (POST /related, POST /add, GET /stats, GET /metrics, GET /debug/pprof/)", *addr)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			log.Fatalf("serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	log.Print("shutting down...")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Printf("serve: shutdown: %v", err)
	}
}

// loadCorpus reads post texts from a cmd/gencorpus JSONL file, or
// generates a synthetic corpus when path is empty.
func loadCorpus(path, domain string, n int, seed int64) ([]string, error) {
	if path == "" {
		d, err := parseDomain(domain)
		if err != nil {
			return nil, err
		}
		posts := forum.Generate(forum.Config{Domain: d, NumPosts: n, Seed: seed})
		texts := make([]string, len(posts))
		for i, p := range posts {
			texts[i] = p.Text
		}
		return texts, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var texts []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // generated posts are small; allow 16MB lines anyway
	for sc.Scan() {
		var rec struct {
			Text string `json:"text"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		texts = append(texts, rec.Text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("%s: empty corpus", path)
	}
	return texts, nil
}

func parseDomain(name string) (forum.Domain, error) {
	switch name {
	case "tech":
		return forum.TechSupport, nil
	case "travel":
		return forum.Travel, nil
	case "prog", "programming":
		return forum.Programming, nil
	case "health":
		return forum.Health, nil
	}
	return 0, fmt.Errorf("unknown domain %q (tech, travel, prog, health)", name)
}
