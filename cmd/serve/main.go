// Command serve runs the related-post pipeline as a long-running HTTP
// service: it builds the offline phases over a corpus at startup, then
// answers online queries and ingests new posts concurrently, with the
// obs metrics registry (JSON and Prometheus text exposition),
// per-request traces, and pprof exposed for operations. All process
// logging is structured JSON on stderr (log/slog); each API request
// additionally emits one access-log record carrying its trace id. See
// the "Serving over HTTP" section of README.md for the endpoint
// reference and a metrics glossary.
//
// The same binary also runs as one process of a networked shard fleet
// (-shard-role): "shard" serves one or more partitions of a shard
// directory over the internal probe endpoints, "coordinator" serves the
// public /related surface by scattering over a fleet topology file. See
// the "Networked shard fleet" section of README.md.
//
// Usage:
//
//	serve -addr :8080 -domain tech -n 1000 -seed 42
//	serve -corpus corpus.jsonl                 # cmd/gencorpus output
//	serve -load built.idx                      # cmd/intentmatch -save output
//	serve -load sharddir/                      # core.WriteShardDir output
//	serve -trace-slow 50ms -trace-rate 5       # capture policy
//	serve -cache-entries 4096 -max-inflight 64 -max-queued 128   # heavy-traffic hygiene
//	serve -shard-role shard -load sharddir/ -own 0 -addr :9000
//	serve -shard-role coordinator -fleet topology.json -addr :8080
//	curl -s localhost:8080/related -d '{"doc_id": 3, "k": 5, "explain": true}'
//	curl -s localhost:8080/metrics?format=prometheus
//	curl -s localhost:8080/debug/traces | jq '.traces[0]'
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/fleet"
	"repro/internal/forum"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/internal/shard"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	corpus := flag.String("corpus", "", "JSONL corpus file (cmd/gencorpus output); empty generates synthetically")
	load := flag.String("load", "",
		"serve a persisted pipeline instead of building: a snapshot file (compact or legacy gob, sniffed) or a shard directory")
	domain := flag.String("domain", "tech", "synthetic domain: tech, travel, prog, or health")
	n := flag.Int("n", 1000, "synthetic corpus size")
	seed := flag.Int64("seed", 42, "random seed")
	workers := flag.Int("workers", 0, "offline-build parallelism (0 = GOMAXPROCS)")
	shards := flag.Int("shards", 0,
		"serve the collection partitioned across this many shards with scatter-gather queries (0 or 1 = unsharded; rankings are identical either way)")
	traceSlow := flag.Duration("trace-slow", 100*time.Millisecond,
		"always capture traces of requests at least this slow (0 captures every request, negative disables)")
	traceRate := flag.Int("trace-rate", 1, "rate-sample up to this many request traces per second (0 disables)")
	traceRing := flag.Int("trace-ring", 0, "retained finished traces (0 = default 256)")
	sloLatency := flag.Duration("slo-latency", 0,
		"per-request latency objective; slower requests count into slo.<endpoint>.breaches (0 = default 250ms)")
	cacheEntries := flag.Int("cache-entries", 0,
		"bound of the /related result cache, in entries; enables the cache and singleflight collapsing, keyed by (doc, k, explain, collection epoch) so any add invalidates (0 = off)")
	maxInflight := flag.Int("max-inflight", 0,
		"bound on concurrently computing /related queries; excess requests queue up to -max-queued, then shed with a typed 503 + Retry-After (0 = off)")
	maxQueued := flag.Int("max-queued", 0,
		"admission wait-queue depth on top of -max-inflight (0 = shed as soon as the in-flight limit is hit)")
	shardRole := flag.String("shard-role", "",
		"fleet process role: empty (single-process pipeline), shard (serve partitions of a -load shard directory on the internal probe endpoints), or coordinator (scatter-gather over a -fleet topology)")
	own := flag.String("own", "", "shard role: comma-separated shard ids this process serves (default all shards in the directory)")
	fleetFile := flag.String("fleet", "", "coordinator role: fleet topology JSON file (fleet.Topology layout)")
	fleetTimeout := flag.Duration("fleet-timeout", 2*time.Second, "coordinator: whole-query budget")
	fleetAttempt := flag.Duration("fleet-attempt-timeout", 500*time.Millisecond, "coordinator: per-attempt deadline")
	fleetRetries := flag.Int("fleet-retries", 2, "coordinator: per-leg retries beyond the first attempt (-1 disables)")
	fleetBackoff := flag.Duration("fleet-backoff", 25*time.Millisecond, "coordinator: base retry backoff (doubles per attempt)")
	fleetHedge := flag.Duration("fleet-hedge-after", 100*time.Millisecond, "coordinator: hedge-to-replica delay until latency history accrues")
	fleetBootstrap := flag.Duration("fleet-bootstrap", 15*time.Second, "coordinator: how long to keep retrying the topology bootstrap while shard servers come up")
	flag.Parse()

	logger := slog.New(slog.NewJSONHandler(os.Stderr, nil))
	fatal := func(msg string, err error) {
		logger.Error(msg, "err", err)
		os.Exit(1)
	}

	// Enable metrics before the build so the build.* spans of this
	// process's offline phase are already on /metrics at first scrape.
	obs.Enable()
	stopPoller := obs.StartRuntimePoller(10 * time.Second)
	defer stopPoller()

	scfg := serve.Config{
		Logger:        logger,
		TraceRate:     *traceRate,
		SlowQuery:     *traceSlow,
		TraceRingSize: *traceRing,
		SLOLatency:    *sloLatency,
		CacheEntries:  *cacheEntries,
		MaxInflight:   *maxInflight,
		MaxQueued:     *maxQueued,
	}
	switch *shardRole {
	case "":
		// Single-process pipeline below.
	case "shard":
		h, err := loadShardHost(*load, *own)
		if err != nil {
			fatal("shard host", err)
		}
		m := h.Meta()
		logger.Info("shard host ready", "path", *load, "own", m.Shards,
			"total_shards", m.TotalShards, "docs", m.Docs, "epoch", m.Epoch)
		runServer(*addr, serve.NewShardServer(h, scfg).Handler(), logger,
			"POST /internal/home, POST /internal/probe, POST /internal/explain, GET /internal/meta, GET /internal/metricsz, GET /metrics, GET /healthz, GET /debug/traces")
		return
	case "coordinator":
		c, err := bootstrapCoordinator(*fleetFile, fleet.Options{
			Transport:      fleet.NewHTTPTransport(),
			Timeout:        *fleetTimeout,
			AttemptTimeout: *fleetAttempt,
			Retries:        *fleetRetries,
			Backoff:        *fleetBackoff,
			HedgeAfter:     *fleetHedge,
		}, *fleetBootstrap, logger)
		if err != nil {
			fatal("coordinator bootstrap", err)
		}
		logger.Info("coordinator ready", "topology", *fleetFile,
			"shards", c.NumShards(), "docs", c.NumDocs(), "epoch", c.Epoch())
		runServer(*addr, serve.NewFleetServer(c, scfg).Handler(), logger,
			"POST /related, GET /stats, GET /metrics, GET /healthz, GET /debug/traces")
		return
	default:
		fatal("flags", fmt.Errorf("unknown -shard-role %q (shard, coordinator)", *shardRole))
	}

	var p *core.Pipeline
	if *load != "" {
		// Serving a built snapshot is the offline→online handoff of Sec 7:
		// the restart path skips the whole build and is bounded by decode
		// speed — the figure the compact layout exists to shrink.
		start := time.Now()
		var err error
		p, err = loadPipeline(*load)
		if err != nil {
			fatal("load", err)
		}
		st := p.Stats()
		logger.Info("loaded",
			"path", *load,
			"elapsed", time.Since(start).Round(time.Millisecond).String(),
			"docs", st.NumDocs, "clusters", st.NumClusters, "shards", p.Shards())
	} else {
		texts, err := loadCorpus(*corpus, *domain, *n, *seed)
		if err != nil {
			fatal("corpus", err)
		}
		logger.Info("building pipeline", "posts", len(texts))
		start := time.Now()
		p, err = core.Build(texts, core.Config{Seed: *seed, Workers: *workers, Shards: *shards})
		if err != nil {
			fatal("build", err)
		}
		st := p.Stats()
		logger.Info("built",
			"elapsed", time.Since(start).Round(time.Millisecond).String(),
			"docs", st.NumDocs, "segments", st.NumSegments, "clusters", st.NumClusters,
			"shards", p.Shards(),
			"segment_ms", st.Segmentation.Milliseconds(),
			"group_ms", st.Grouping.Milliseconds(),
			"index_ms", st.Indexing.Milliseconds())
	}

	runServer(*addr, serve.New(p, scfg).Handler(), logger,
		"POST /related, POST /add, GET /stats, GET /metrics, GET /debug/traces, GET /debug/pprof/")
}

// runServer serves handler on addr until SIGINT/SIGTERM, then drains
// with a 10s grace period. Shared by all three roles so a fleet process
// shuts down exactly like the single binary.
func runServer(addr string, handler http.Handler, logger *slog.Logger, endpoints string) {
	srv := &http.Server{
		Addr:              addr,
		Handler:           handler,
		ReadHeaderTimeout: 5 * time.Second,
	}
	go func() {
		logger.Info("serving", "addr", addr, "endpoints", endpoints)
		if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
			logger.Error("listen", "err", err)
			os.Exit(1)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	<-stop
	logger.Info("shutting down")
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		logger.Error("shutdown", "err", err)
	}
}

// loadShardHost builds the shard-role backend: the shards named in own
// (all of them when empty) from a shard directory, with the statistics
// pools accumulated over the whole collection so scores stay
// collection-global.
func loadShardHost(dir, own string) (*fleet.Host, error) {
	if dir == "" {
		return nil, fmt.Errorf("-shard-role shard needs -load pointing at a shard directory")
	}
	m, err := shard.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	var ids []int
	if own == "" {
		for s := 0; s < m.Shards; s++ {
			ids = append(ids, s)
		}
	} else {
		for _, part := range strings.Split(own, ",") {
			s, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad -own id %q", part)
			}
			ids = append(ids, s)
		}
	}
	return fleet.LoadHostDir(dir, ids)
}

// bootstrapCoordinator reads the topology file and bootstraps against
// it, retrying while shard servers are still coming up — fleet
// processes are typically started together, and the coordinator is the
// last one to become healthy.
func bootstrapCoordinator(path string, opts fleet.Options, patience time.Duration, logger *slog.Logger) (*fleet.Coordinator, error) {
	if path == "" {
		return nil, fmt.Errorf("-shard-role coordinator needs -fleet pointing at a topology JSON file")
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var topo fleet.Topology
	if err := json.Unmarshal(raw, &topo); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	deadline := time.Now().Add(patience)
	for {
		c, err := fleet.New(context.Background(), topo, opts)
		if err == nil {
			return c, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		logger.Info("bootstrap retry", "err", err.Error())
		time.Sleep(300 * time.Millisecond)
	}
}

// loadPipeline restores a persisted pipeline: a shard directory (from
// core.WriteShardDir) or a single snapshot file (from Pipeline.WriteTo,
// in either the compact or the legacy gob matcher layout).
func loadPipeline(path string) (*core.Pipeline, error) {
	info, err := os.Stat(path)
	if err != nil {
		return nil, err
	}
	if info.IsDir() {
		return core.ReadShardDir(path)
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return core.ReadPipeline(bufio.NewReader(f))
}

// loadCorpus reads post texts from a cmd/gencorpus JSONL file, or
// generates a synthetic corpus when path is empty.
func loadCorpus(path, domain string, n int, seed int64) ([]string, error) {
	if path == "" {
		d, err := parseDomain(domain)
		if err != nil {
			return nil, err
		}
		posts := forum.Generate(forum.Config{Domain: d, NumPosts: n, Seed: seed})
		texts := make([]string, len(posts))
		for i, p := range posts {
			texts[i] = p.Text
		}
		return texts, nil
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var texts []string
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<24) // generated posts are small; allow 16MB lines anyway
	for sc.Scan() {
		var rec struct {
			Text string `json:"text"`
		}
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		texts = append(texts, rec.Text)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if len(texts) == 0 {
		return nil, fmt.Errorf("%s: empty corpus", path)
	}
	return texts, nil
}

func parseDomain(name string) (forum.Domain, error) {
	switch name {
	case "tech":
		return forum.TechSupport, nil
	case "travel":
		return forum.Travel, nil
	case "prog", "programming":
		return forum.Programming, nil
	case "health":
		return forum.Health, nil
	}
	return 0, fmt.Errorf("unknown domain %q (tech, travel, prog, health)", name)
}
