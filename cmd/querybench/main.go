// Command querybench measures the Eq 7–9 query path: for a range of
// synthetic index sizes it builds one posting index over a Zipf-shaped
// vocabulary (a few very common terms, a long rare tail — the forum
// shape), then times top-k retrieval through the exhaustive reference
// scan and through the max-score pruned scan, reporting ns/op and the
// postings actually scanned by each (from the index.scan.postings
// counter). The two paths return bit-identical results — proven by the
// property, golden, and shard tests — so the comparison isolates pure
// scan cost. scripts/bench.sh merges the JSON into the per-PR BENCH
// snapshot; with -require-speedup it exits non-zero if pruning fails to
// pay at the largest size.
//
// Usage:
//
//	querybench                            # sizes 1000,10000,100000
//	querybench -sizes 1000 -runs 32       # quick smoke
//	querybench -require-speedup -out q.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
)

// sizeReport is one corpus-size measurement. The *_postings figures are
// postings scanned per query (averaged over the measured queries);
// PostingsRatio and SpeedupNS are exhaustive/pruned, so >1 means
// pruning wins.
type sizeReport struct {
	Docs               int     `json:"docs"`
	TopK               int     `json:"top_k"`
	ExhaustiveNSPerOp  int64   `json:"exhaustive_ns_per_op"`
	PrunedNSPerOp      int64   `json:"pruned_ns_per_op"`
	ExhaustivePostings int64   `json:"exhaustive_postings_per_op"`
	PrunedPostings     int64   `json:"pruned_postings_per_op"`
	SpeedupNS          float64 `json:"speedup_ns"`
	PostingsRatio      float64 `json:"postings_ratio"`
}

func buildCorpus(units, vocab int, seed int64) (*index.Index, []map[string]float64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(vocab-1))
	ix := index.New()
	docs := make([][]string, units)
	for u := 0; u < units; u++ {
		n := 20 + rng.Intn(40)
		terms := make([]string, n)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%05d", zipf.Uint64())
		}
		docs[u] = terms
		ix.Add(terms)
	}
	queries := make([]map[string]float64, 64)
	for i := range queries {
		queries[i] = index.TermFrequencies(docs[rng.Intn(units)])
	}
	return ix, queries
}

// measure times fn over runs query invocations (cycling through the
// query set) and returns median ns/op and postings scanned per op.
func measure(queries []map[string]float64, runs int, fn func(q map[string]float64)) (nsPerOp, postingsPerOp int64) {
	scanned := obs.GetOrNewCounter("index.scan.postings")
	// Warm up pools and caches.
	for i := 0; i < len(queries) && i < 8; i++ {
		fn(queries[i])
	}
	times := make([]int64, 0, runs)
	before := scanned.Value()
	for i := 0; i < runs; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		fn(q)
		times = append(times, time.Since(t0).Nanoseconds())
	}
	postingsPerOp = (scanned.Value() - before) / int64(runs)
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], postingsPerOp
}

func main() {
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated index sizes (units)")
	runs := flag.Int("runs", 256, "measured queries per path per size")
	vocab := flag.Int("vocab", 2000, "synthetic vocabulary size")
	topK := flag.Int("k", 10, "retrieval depth")
	seed := flag.Int64("seed", 42, "corpus seed")
	out := flag.String("out", "", "output JSON file (default stdout)")
	requireSpeedup := flag.Bool("require-speedup", false,
		"exit 1 unless the pruned path is faster and scans fewer postings at the largest size")
	flag.Parse()

	obs.Enable() // the postings counters are recorded only when obs is on

	var reports []sizeReport
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "querybench: bad size %q\n", s)
			os.Exit(2)
		}
		ix, queries := buildCorpus(n, *vocab, *seed)
		exNS, exPost := measure(queries, *runs, func(q map[string]float64) {
			ix.QueryExhaustive(q, *topK, nil)
		})
		prNS, prPost := measure(queries, *runs, func(q map[string]float64) {
			ix.Query(q, *topK, nil)
		})
		r := sizeReport{
			Docs: n, TopK: *topK,
			ExhaustiveNSPerOp: exNS, PrunedNSPerOp: prNS,
			ExhaustivePostings: exPost, PrunedPostings: prPost,
		}
		if prNS > 0 {
			r.SpeedupNS = float64(exNS) / float64(prNS)
		}
		if prPost > 0 {
			r.PostingsRatio = float64(exPost) / float64(prPost)
		}
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "querybench: %d units: exhaustive %dns/%d postings, pruned %dns/%d postings (%.2fx ns, %.2fx postings)\n",
			n, exNS, exPost, prNS, prPost, r.SpeedupNS, r.PostingsRatio)
	}

	data, err := json.MarshalIndent(map[string]any{"query": reports}, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "querybench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "querybench:", err)
		os.Exit(1)
	}

	if *requireSpeedup {
		last := reports[len(reports)-1]
		if last.PrunedNSPerOp >= last.ExhaustiveNSPerOp {
			fmt.Fprintf(os.Stderr,
				"querybench: FAIL: pruned path is not faster at %d units (pruned %dns/op vs exhaustive %dns/op) — max-score pruning has regressed\n",
				last.Docs, last.PrunedNSPerOp, last.ExhaustiveNSPerOp)
			os.Exit(1)
		}
		if last.PostingsRatio < 2 {
			fmt.Fprintf(os.Stderr,
				"querybench: FAIL: pruned path scans only %.2fx fewer postings at %d units (need >= 2x) — the bound ordering or early termination has regressed\n",
				last.PostingsRatio, last.Docs)
			os.Exit(1)
		}
	}
}
