// Command querybench measures the Eq 7–9 query path: for a range of
// synthetic index sizes it builds one posting index over a Zipf-shaped
// vocabulary (a few very common terms, a long rare tail — the forum
// shape), then times top-k retrieval through the exhaustive reference
// scan and through the max-score pruned scan, reporting ns/op and the
// postings actually scanned by each (from the index.scan.postings
// counter). The two paths return bit-identical results — proven by the
// property, golden, and shard tests — so the comparison isolates pure
// scan cost. scripts/bench.sh merges the JSON into the per-PR BENCH
// snapshot; with -require-speedup it exits non-zero if pruning fails to
// pay at the largest size.
//
// With -fleet-docs it also measures the serving-topology tax: the same
// forum corpus queried through the unsharded matcher, the in-process
// shard group, and the networked fleet coordinator over the in-process
// transport — three bit-identical ranking paths, so the deltas are pure
// scatter-gather protocol and merge cost (no sockets).
//
// Usage:
//
//	querybench                            # sizes 1000,10000,100000
//	querybench -sizes 1000 -runs 32       # quick smoke
//	querybench -sizes 1000000             # the 1M-unit leg
//	querybench -fleet-docs 10000          # add the fleet-overhead block
//	querybench -require-speedup -out q.json
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"
	"time"

	"repro/internal/fleet"
	"repro/internal/forum"
	"repro/internal/index"
	"repro/internal/match"
	"repro/internal/obs"
	"repro/internal/segment"
	"repro/internal/shard"
)

// sizeReport is one corpus-size measurement. The *_postings figures are
// postings scanned per query (averaged over the measured queries);
// PostingsRatio and SpeedupNS are exhaustive/pruned, so >1 means
// pruning wins.
type sizeReport struct {
	Docs               int     `json:"docs"`
	TopK               int     `json:"top_k"`
	ExhaustiveNSPerOp  int64   `json:"exhaustive_ns_per_op"`
	PrunedNSPerOp      int64   `json:"pruned_ns_per_op"`
	ExhaustivePostings int64   `json:"exhaustive_postings_per_op"`
	PrunedPostings     int64   `json:"pruned_postings_per_op"`
	SpeedupNS          float64 `json:"speedup_ns"`
	PostingsRatio      float64 `json:"postings_ratio"`
}

func buildCorpus(units, vocab int, seed int64) (*index.Index, []map[string]float64) {
	rng := rand.New(rand.NewSource(seed))
	zipf := rand.NewZipf(rng, 1.2, 1.0, uint64(vocab-1))
	ix := index.New()
	docs := make([][]string, units)
	for u := 0; u < units; u++ {
		n := 20 + rng.Intn(40)
		terms := make([]string, n)
		for i := range terms {
			terms[i] = fmt.Sprintf("t%05d", zipf.Uint64())
		}
		docs[u] = terms
		ix.Add(terms)
	}
	queries := make([]map[string]float64, 64)
	for i := range queries {
		queries[i] = index.TermFrequencies(docs[rng.Intn(units)])
	}
	return ix, queries
}

// measure times fn over runs query invocations (cycling through the
// query set) and returns median ns/op and postings scanned per op.
func measure(queries []map[string]float64, runs int, fn func(q map[string]float64)) (nsPerOp, postingsPerOp int64) {
	scanned := obs.GetOrNewCounter("index.scan.postings")
	// Warm up pools and caches.
	for i := 0; i < len(queries) && i < 8; i++ {
		fn(queries[i])
	}
	times := make([]int64, 0, runs)
	before := scanned.Value()
	for i := 0; i < runs; i++ {
		q := queries[i%len(queries)]
		t0 := time.Now()
		fn(q)
		times = append(times, time.Since(t0).Nanoseconds())
	}
	postingsPerOp = (scanned.Value() - before) / int64(runs)
	sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
	return times[len(times)/2], postingsPerOp
}

// fleetReport is one fleet-overhead measurement: median ns/op for the
// same top-k query through the unsharded matcher, the in-process shard
// group, and the fleet coordinator over LocalTransport. FleetOverhead
// is fleet/single — the cost multiple of serving the collection as a
// networked fleet instead of one index.
type fleetReport struct {
	Docs          int     `json:"docs"`
	Shards        int     `json:"shards"`
	TopK          int     `json:"top_k"`
	SingleNSPerOp int64   `json:"single_ns_per_op"`
	GroupNSPerOp  int64   `json:"group_ns_per_op"`
	FleetNSPerOp  int64   `json:"fleet_ns_per_op"`
	FleetOverhead float64 `json:"fleet_overhead"`
}

// benchFleet builds one forum corpus, serves it three ways, checks the
// rankings agree, and times each path over the same query mix.
func benchFleet(nDocs, shards, topK, runs int, seed int64) (fleetReport, error) {
	posts := forum.Generate(forum.Config{Domain: forum.TechSupport, NumPosts: nDocs, Seed: seed})
	docs := make([]*segment.Doc, len(posts))
	for i, p := range posts {
		docs[i] = segment.NewDoc(p.Text)
	}
	mr := match.NewMR("IntentIntent-MR", docs, match.MRConfig{Seed: seed})
	g, err := shard.NewGroup(mr, shards, uint64(seed))
	if err != nil {
		return fleetReport{}, err
	}
	hosts := fleet.HostsForGroup(g)
	lt := fleet.NewLocalTransport()
	var topo fleet.Topology
	for s := 0; s < shards; s++ {
		ep := fmt.Sprintf("s%d", s)
		lt.AddHost(ep, hosts[s])
		topo.Endpoints = append(topo.Endpoints, fleet.ShardEndpoints{Shard: s, Primary: ep})
	}
	c, err := fleet.New(context.Background(), topo, fleet.Options{Transport: lt})
	if err != nil {
		return fleetReport{}, err
	}

	rng := rand.New(rand.NewSource(seed))
	queries := make([]int, 64)
	for i := range queries {
		queries[i] = rng.Intn(nDocs)
	}
	for _, doc := range queries[:4] { // the three paths must agree before timing means anything
		want := mr.Match(doc, topK)
		res, err := c.Related(context.Background(), doc, topK, nil)
		if err != nil || res.Partial {
			return fleetReport{}, fmt.Errorf("fleet query doc %d: partial=%v err=%v", doc, res != nil && res.Partial, err)
		}
		if len(res.Results) != len(want) {
			return fleetReport{}, fmt.Errorf("fleet query doc %d: %d results, single index has %d", doc, len(res.Results), len(want))
		}
		for i := range want {
			if res.Results[i] != want[i] {
				return fleetReport{}, fmt.Errorf("fleet query doc %d diverges from the single index at rank %d", doc, i)
			}
		}
	}

	timePath := func(fn func(doc int)) int64 {
		for i := 0; i < len(queries) && i < 8; i++ {
			fn(queries[i])
		}
		times := make([]int64, 0, runs)
		for i := 0; i < runs; i++ {
			doc := queries[i%len(queries)]
			t0 := time.Now()
			fn(doc)
			times = append(times, time.Since(t0).Nanoseconds())
		}
		sort.Slice(times, func(a, b int) bool { return times[a] < times[b] })
		return times[len(times)/2]
	}
	r := fleetReport{
		Docs: nDocs, Shards: shards, TopK: topK,
		SingleNSPerOp: timePath(func(doc int) { mr.Match(doc, topK) }),
		GroupNSPerOp:  timePath(func(doc int) { g.Match(doc, topK) }),
		FleetNSPerOp:  timePath(func(doc int) { _, _ = c.Related(context.Background(), doc, topK, nil) }),
	}
	if r.SingleNSPerOp > 0 {
		r.FleetOverhead = float64(r.FleetNSPerOp) / float64(r.SingleNSPerOp)
	}
	return r, nil
}

func main() {
	sizes := flag.String("sizes", "1000,10000,100000", "comma-separated index sizes (units)")
	runs := flag.Int("runs", 256, "measured queries per path per size")
	vocab := flag.Int("vocab", 2000, "synthetic vocabulary size")
	topK := flag.Int("k", 10, "retrieval depth")
	seed := flag.Int64("seed", 42, "corpus seed")
	out := flag.String("out", "", "output JSON file (default stdout)")
	fleetDocs := flag.Int("fleet-docs", 0,
		"forum corpus size for the fleet-overhead leg (0 skips it; the build segments and clusters the corpus, so this is far costlier per doc than -sizes units)")
	fleetShards := flag.Int("fleet-shards", 4, "shard count for the fleet-overhead leg")
	requireSpeedup := flag.Bool("require-speedup", false,
		"exit 1 unless the pruned path is faster and scans fewer postings at the largest size")
	flag.Parse()

	obs.Enable() // the postings counters are recorded only when obs is on

	var reports []sizeReport
	for _, s := range strings.Split(*sizes, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil || n <= 0 {
			fmt.Fprintf(os.Stderr, "querybench: bad size %q\n", s)
			os.Exit(2)
		}
		ix, queries := buildCorpus(n, *vocab, *seed)
		exNS, exPost := measure(queries, *runs, func(q map[string]float64) {
			ix.QueryExhaustive(q, *topK, nil)
		})
		prNS, prPost := measure(queries, *runs, func(q map[string]float64) {
			ix.Query(q, *topK, nil)
		})
		r := sizeReport{
			Docs: n, TopK: *topK,
			ExhaustiveNSPerOp: exNS, PrunedNSPerOp: prNS,
			ExhaustivePostings: exPost, PrunedPostings: prPost,
		}
		if prNS > 0 {
			r.SpeedupNS = float64(exNS) / float64(prNS)
		}
		if prPost > 0 {
			r.PostingsRatio = float64(exPost) / float64(prPost)
		}
		reports = append(reports, r)
		fmt.Fprintf(os.Stderr, "querybench: %d units: exhaustive %dns/%d postings, pruned %dns/%d postings (%.2fx ns, %.2fx postings)\n",
			n, exNS, exPost, prNS, prPost, r.SpeedupNS, r.PostingsRatio)
	}

	payload := map[string]any{"query": reports}
	if *fleetDocs > 0 {
		fr, err := benchFleet(*fleetDocs, *fleetShards, *topK, *runs, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, "querybench: fleet leg:", err)
			os.Exit(1)
		}
		payload["fleet"] = fr
		fmt.Fprintf(os.Stderr, "querybench: fleet %d docs x %d shards: single %dns, group %dns, fleet %dns (%.2fx overhead)\n",
			fr.Docs, fr.Shards, fr.SingleNSPerOp, fr.GroupNSPerOp, fr.FleetNSPerOp, fr.FleetOverhead)
	}

	data, err := json.MarshalIndent(payload, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "querybench:", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
	} else if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "querybench:", err)
		os.Exit(1)
	}

	if *requireSpeedup {
		last := reports[len(reports)-1]
		if last.PrunedNSPerOp >= last.ExhaustiveNSPerOp {
			fmt.Fprintf(os.Stderr,
				"querybench: FAIL: pruned path is not faster at %d units (pruned %dns/op vs exhaustive %dns/op) — max-score pruning has regressed\n",
				last.Docs, last.PrunedNSPerOp, last.ExhaustiveNSPerOp)
			os.Exit(1)
		}
		if last.PostingsRatio < 2 {
			fmt.Fprintf(os.Stderr,
				"querybench: FAIL: pruned path scans only %.2fx fewer postings at %d units (need >= 2x) — the bound ordering or early termination has regressed\n",
				last.PostingsRatio, last.Docs)
			os.Exit(1)
		}
	}
}
