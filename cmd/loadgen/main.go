// Command loadgen drives a running serve instance (single-process,
// sharded, or fleet coordinator) with an open-loop request schedule and
// reports latency quantiles.
//
// Open-loop means arrivals follow a fixed schedule derived from -rate
// alone: a request that should fire at t=i/rate fires then (or as soon
// as the generator catches up), whether or not earlier requests have
// completed, and its latency is measured from the scheduled start — not
// from when a worker got around to sending it. A closed-loop driver
// (send, wait, send) silently stops offering load while the server
// stalls, so a 2-second pause costs it two seconds of one request's
// latency instead of rate×2 requests' worth — the coordinated-omission
// trap. Under open-loop scheduling a stall shows up in P999 as the
// queueing delay every scheduled-but-delayed request actually suffered.
//
// The workload mixes POST /related (doc ids drawn Zipfian over the
// served collection, mimicking hot-post skew) with POST /add at
// -add-frac (0 for fleet coordinators, whose /add answers 501).
//
// Usage:
//
//	loadgen -target http://localhost:8080 -rate 200 -duration 10s
//	loadgen -target http://localhost:8080 -rate 50 -add-frac 0.05 -out load.json
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"
)

type result struct {
	latency time.Duration
	err     bool
	shed    bool
}

// cacheStats mirrors the cache block a hygiene-enabled server exposes
// on /stats (absent — nil — when caching is off).
type cacheStats struct {
	Hits    int64   `json:"hits"`
	Misses  int64   `json:"misses"`
	HitRate float64 `json:"hit_rate"`
}

// report is the JSON written to -out (and stdout): everything the
// bench harness needs to compare topologies at one glance.
type report struct {
	Name          string  `json:"name,omitempty"`
	Target        string  `json:"target"`
	RatePerSec    float64 `json:"rate_per_sec"`
	DurationSec   float64 `json:"duration_sec"`
	AddFrac       float64 `json:"add_frac"`
	NumDocs       int     `json:"num_docs"`
	Sent          int     `json:"sent"`
	OK            int     `json:"ok"`
	Errors        int     `json:"errors"`
	// Shed counts typed 503 overload responses (a subset of Errors):
	// the server refusing work by contract rather than failing at it.
	Shed          int     `json:"shed"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50NS         int64   `json:"p50_ns"`
	P90NS         int64   `json:"p90_ns"`
	P99NS         int64   `json:"p99_ns"`
	P999NS        int64   `json:"p999_ns"`
	MaxNS         int64   `json:"max_ns"`
	// Cache is the server's result-cache view scraped from /stats after
	// the run; absent when the target serves with caching off.
	Cache *cacheStats `json:"cache,omitempty"`
}

func main() {
	target := flag.String("target", "http://localhost:8080", "base URL of the serve instance")
	rate := flag.Float64("rate", 100, "offered load, requests per second (open-loop schedule)")
	duration := flag.Duration("duration", 10*time.Second, "run length")
	k := flag.Int("k", 5, "result count per /related query")
	seed := flag.Int64("seed", 1, "random seed for the Zipfian document picks")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request HTTP timeout")
	addFrac := flag.Float64("add-frac", 0, "fraction of requests that are POST /add (0..1); keep 0 against fleet coordinators")
	out := flag.String("out", "", "also write the JSON report to this file")
	name := flag.String("name", "", "label recorded in the report (e.g. single, fleet)")
	flag.Parse()

	if *rate <= 0 || *duration <= 0 {
		fmt.Fprintln(os.Stderr, "loadgen: -rate and -duration must be positive")
		os.Exit(2)
	}

	client := &http.Client{Timeout: *timeout}
	numDocs, err := fetchNumDocs(client, *target)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %s/stats: %v\n", *target, err)
		os.Exit(1)
	}
	if numDocs == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %s serves zero documents\n", *target)
		os.Exit(1)
	}

	// rand.Zipf draws ranks with P(rank) ∝ 1/(rank+q)^s; s=1.1, q=1 is
	// the usual mild web-traffic skew. Ranks are used directly as doc
	// ids: generated corpora carry no inherent hotness, so any fixed
	// rank→id map produces the same load shape.
	rng := rand.New(rand.NewSource(*seed))
	zipf := rand.NewZipf(rng, 1.1, 1, uint64(numDocs-1))

	total := int(float64(*duration) / float64(time.Second) * *rate)
	if total < 1 {
		total = 1
	}
	interval := time.Duration(float64(time.Second) / *rate)

	// Pre-draw the whole schedule so the firing loop does no RNG work
	// (and so the doc sequence is independent of timing jitter).
	docs := make([]int, total)
	adds := make([]bool, total)
	for i := range docs {
		docs[i] = int(zipf.Uint64())
		adds[i] = rng.Float64() < *addFrac
	}

	results := make([]result, total)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < total; i++ {
		// Open loop: sleep until the i-th scheduled instant, then fire on
		// a fresh goroutine. Latency counts from the *scheduled* time, so
		// generator lag (oversubscribed CPU) is charged to the request,
		// exactly as a queued client would experience it.
		sched := time.Duration(i) * interval
		if d := sched - time.Since(start); d > 0 {
			time.Sleep(d)
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status := fire(client, *target, docs[i], *k, adds[i])
			results[i] = result{
				latency: time.Since(start) - time.Duration(i)*interval,
				err:     status != http.StatusOK,
				shed:    status == http.StatusServiceUnavailable,
			}
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	lats := make([]int64, 0, total)
	okCount, shedCount := 0, 0
	for _, r := range results {
		lats = append(lats, int64(r.latency))
		if !r.err {
			okCount++
		}
		if r.shed {
			shedCount++
		}
	}
	sort.Slice(lats, func(a, b int) bool { return lats[a] < lats[b] })

	rep := report{
		Name:          *name,
		Target:        *target,
		RatePerSec:    *rate,
		DurationSec:   elapsed.Seconds(),
		AddFrac:       *addFrac,
		NumDocs:       numDocs,
		Sent:          total,
		OK:            okCount,
		Errors:        total - okCount,
		Shed:          shedCount,
		ThroughputRPS: float64(total) / elapsed.Seconds(),
		Cache:         fetchCacheStats(client, *target),
		P50NS:         quantile(lats, 0.50),
		P90NS:         quantile(lats, 0.90),
		P99NS:         quantile(lats, 0.99),
		P999NS:        quantile(lats, 0.999),
		MaxNS:         lats[len(lats)-1],
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	_ = enc.Encode(rep)
	if *out != "" {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		if err := os.WriteFile(*out, append(raw, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: write %s: %v\n", *out, err)
			os.Exit(1)
		}
	}
	if okCount == 0 {
		os.Exit(1)
	}
}

// quantile reads the exact q-quantile from sorted latencies (nearest
// rank; no interpolation — these are measured samples, not buckets).
func quantile(sorted []int64, q float64) int64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

// fetchNumDocs asks /stats for the collection size; both the
// single-process StatsResponse and the fleet's FleetStatsResponse carry
// num_docs.
func fetchNumDocs(client *http.Client, target string) (int, error) {
	resp, err := client.Get(target + "/stats")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		raw, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, raw)
	}
	var st struct {
		NumDocs int `json:"num_docs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return 0, err
	}
	return st.NumDocs, nil
}

// fetchCacheStats scrapes the post-run cache block from /stats; nil
// when the target serves uncached (the block is omitempty) or the
// scrape fails (the report simply goes without).
func fetchCacheStats(client *http.Client, target string) *cacheStats {
	resp, err := client.Get(target + "/stats")
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st struct {
		Cache *cacheStats `json:"cache"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return nil
	}
	return st.Cache
}

// fire issues one request and returns the HTTP status (0 on transport
// error). Request bodies are tiny and fixed-shape; building them inline
// keeps the goroutine cheap.
func fire(client *http.Client, target string, doc, k int, add bool) int {
	var url string
	var body []byte
	if add {
		url = target + "/add"
		body = []byte(`{"text": "loadgen synthetic post: my router keeps dropping the wifi connection after the latest firmware update, any advice appreciated"}`)
	} else {
		url = target + "/related"
		body = []byte(fmt.Sprintf(`{"doc_id": %d, "k": %d}`, doc, k))
	}
	resp, err := client.Post(url, "application/json", bytes.NewReader(body))
	if err != nil {
		return 0
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}
